package label

import "sort"

// Binding maps one parameter index to one symbol key.
type Binding struct {
	Param int32
	Sym   int32
}

// Bindings is a small substitution fragment: a set of parameter-to-symbol
// bindings, kept sorted by parameter with no duplicate parameters.
type Bindings []Binding

// Get returns the symbol bound to p, or NoSym.
func (bs Bindings) Get(p int32) int32 {
	for _, b := range bs {
		if b.Param == p {
			return b.Sym
		}
	}
	return NoSym
}

// bind adds p↦s, reporting false on a conflicting existing binding.
// Consistent duplicates are collapsed.
func (bs *Bindings) bind(p, s int32) bool {
	for _, b := range *bs {
		if b.Param == p {
			return b.Sym == s
		}
	}
	*bs = append(*bs, Binding{Param: p, Sym: s})
	return true
}

// normalize sorts the bindings by parameter index.
func (bs Bindings) normalize() {
	sort.Slice(bs, func(i, j int) bool { return bs[i].Param < bs[j].Param })
}

// Clone returns a copy of the bindings.
func (bs Bindings) Clone() Bindings {
	out := make(Bindings, len(bs))
	copy(out, bs)
	return out
}

// Match is the result of matching one edge label against one transition
// label with the agree/disagree mechanism of Section 3: the label matches
// under a full substitution θ iff θ is consistent with Agree and θ
// contradicts at least one binding in Disagree. An empty Disagree imposes no
// negative constraint. Match results depend only on the (edge label,
// transition label) pair, which is what makes them memoizable (the
// substitution map M_s).
type Match struct {
	// OK reports whether any substitution can make the labels match. When
	// false the other fields are meaningless.
	OK bool
	// Agree holds the positive bindings required for the match.
	Agree Bindings
	// Disagrees holds, for each way the (single) negated subterm can match
	// the edge label, the bindings under which it does; θ must contradict
	// at least one binding in EACH element. A negated alternation
	// ¬(A|B|…) can contribute several elements (one per alternative that
	// unifies). Empty means the negation (if any) is satisfied
	// unconditionally.
	Disagrees []Bindings
}

// DisagreeParams returns the sorted set of parameters occurring in any
// disagree set.
func (m *Match) DisagreeParams() []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, d := range m.Disagrees {
		for _, b := range d {
			if !seen[b.Param] {
				seen[b.Param] = true
				out = append(out, b.Param)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MatchAD matches ground edge label el against transition label tl and
// returns the agree/disagree decomposition. Precondition: tl.ADCompatible()
// — at most one parameter-carrying negation and no nested negations. el must
// be ground.
func MatchAD(tl, el *CTerm) Match {
	var m Match
	if !matchADRec(tl, el, &m) {
		return Match{}
	}
	m.OK = true
	m.Agree.normalize()
	for _, d := range m.Disagrees {
		d.normalize()
	}
	return m
}

func matchADRec(tl, el *CTerm, m *Match) bool {
	switch tl.Kind {
	case KWildcard:
		return true
	case KSym:
		return el.Kind == KSym && el.Sym == tl.Sym
	case KParam:
		if el.Kind != KSym {
			// Parameters instantiate to symbols only (Section 2.1).
			return false
		}
		return m.Agree.bind(tl.Param, el.Sym)
	case KApp:
		if el.Kind != KApp || el.Ctor != tl.Ctor || len(el.Args) != len(tl.Args) {
			return false
		}
		for i := range tl.Args {
			if !matchADRec(tl.Args[i], el.Args[i], m) {
				return false
			}
		}
		return true
	case KNeg:
		inner := tl.Args[0]
		alts := []*CTerm{inner}
		if inner.Kind == KOr {
			alts = inner.Args
		}
		for _, alt := range alts {
			var d Bindings
			if unifyPos(alt, el, &d) {
				if len(d) == 0 {
					// This alternative matches under every substitution, so
					// the negation never holds.
					return false
				}
				// The alternative matches exactly when θ agrees with all
				// of d; record it so the caller can require disagreement.
				m.Disagrees = append(m.Disagrees, d)
			}
			// Alternatives that can never match el impose no constraint.
		}
		return true
	case KOr:
		// Positive alternations are split into automaton alternation during
		// pattern compilation and never reach the matcher.
		panic("label: MatchAD on a positive label alternation; split it first")
	}
	panic("unreachable")
}

// unifyPos unifies a negation-free transition term with a ground edge term,
// accumulating parameter bindings. Used for negation bodies, where an
// internal conflict means the body can never match.
func unifyPos(tl, el *CTerm, bs *Bindings) bool {
	switch tl.Kind {
	case KWildcard:
		return true
	case KSym:
		return el.Kind == KSym && el.Sym == tl.Sym
	case KParam:
		if el.Kind != KSym {
			return false
		}
		return bs.bind(tl.Param, el.Sym)
	case KApp:
		if el.Kind != KApp || el.Ctor != tl.Ctor || len(el.Args) != len(tl.Args) {
			return false
		}
		for i := range tl.Args {
			if !unifyPos(tl.Args[i], el.Args[i], bs) {
				return false
			}
		}
		return true
	case KNeg, KOr:
		// Nested negation or alternation inside a negation body; not
		// AD-compatible.
		panic("label: nested negation or alternation in MatchAD body")
	}
	panic("unreachable")
}

// MatchGround evaluates the full matching relation of Section 2.1 for edge
// label el against θ(tl), where θ is given as a dense substitution vector
// (indexed by parameter; NoSym = unbound).
//
// Precondition: every parameter of tl is bound in subst, so that θ(tl)
// contains no parameters. If an unbound parameter is encountered the label
// does not match (θ(tl) would not be ground).
func MatchGround(tl, el *CTerm, subst []int32) bool {
	switch tl.Kind {
	case KWildcard:
		return true
	case KSym:
		return el.Kind == KSym && el.Sym == tl.Sym
	case KParam:
		if int(tl.Param) >= len(subst) || subst[tl.Param] == NoSym {
			return false
		}
		return el.Kind == KSym && el.Sym == subst[tl.Param]
	case KApp:
		if el.Kind != KApp || el.Ctor != tl.Ctor || len(el.Args) != len(tl.Args) {
			return false
		}
		for i := range tl.Args {
			if !MatchGround(tl.Args[i], el.Args[i], subst) {
				return false
			}
		}
		return true
	case KNeg:
		// θ(tl) must be ground for the match to be defined; all parameters
		// of the body must be bound.
		for _, p := range tl.Args[0].Params() {
			if int(p) >= len(subst) || subst[p] == NoSym {
				return false
			}
		}
		return !MatchGround(tl.Args[0], el, subst)
	case KOr:
		for _, a := range tl.Args {
			if MatchGround(a, el, subst) {
				return true
			}
		}
		return false
	}
	panic("unreachable")
}

// CoveredBy reports whether every parameter of tl is bound in subst.
func CoveredBy(tl *CTerm, subst []int32) bool {
	for _, p := range tl.Params() {
		if int(p) >= len(subst) || subst[p] == NoSym {
			return false
		}
	}
	return true
}
