package label

import (
	"fmt"
	"strings"
	"unicode"

	"rpq/internal/span"
)

// ParseError is a label syntax error with a byte offset into the source
// being parsed. It renders as line:col with a trimmed caret snippet; callers
// embedding a label inside a larger source (the pattern parser) rebase Off
// before rendering against the full source.
type ParseError struct {
	// Src is the source string the parser was reading.
	Src string
	// Off is the byte offset of the error within Src.
	Off int
	// Msg describes the error.
	Msg string
}

// Error renders "label: <msg> at <line:col>" with a caret snippet.
func (e *ParseError) Error() string {
	s := fmt.Sprintf("label: %s at %s", e.Msg, span.PosOf(e.Src, e.Off))
	if snip := span.Caret(e.Src, span.Point(e.Off)); snip != "" {
		s += "\n  " + strings.ReplaceAll(snip, "\n", "\n  ")
	}
	return s
}

// ParseMode controls how bare identifiers in argument position are read.
type ParseMode int

const (
	// GroundMode is used for edge labels in graph files: bare identifiers in
	// argument position are symbols, and parameters are not allowed.
	GroundMode ParseMode = iota
	// PatternMode is used for transition labels inside patterns: bare
	// identifiers in argument position are parameters, and symbols must be
	// quoted ('a') or numeric (0, 42).
	PatternMode
)

// Parse reads a single term from s in the given mode. The whole input must
// be consumed.
//
// Grammar:
//
//	term  := '!' term | '_' | IDENT | IDENT '(' args? ')'
//	args  := arg (',' arg)*
//	arg   := '!' arg | '_' | IDENT | IDENT '(' args? ')' | QUOTED | NUMBER
//
// A bare IDENT at the top level is a zero-argument constructor in both
// modes. In argument position a bare IDENT is a symbol (GroundMode) or a
// parameter (PatternMode).
func Parse(s string, mode ParseMode) (*Term, error) {
	p := &termParser{src: s, mode: mode}
	t, err := p.parseTerm(true)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if mode == GroundMode && !t.IsGround() {
		return nil, fmt.Errorf("label: %q is not a ground edge label", s)
	}
	return t, nil
}

// ParsePrefix parses a single term from the front of s and returns it along
// with the number of bytes consumed. Unlike Parse it does not require the
// whole input to be consumed; it is used by the pattern parser, where a
// label is followed by regular-expression operators.
func ParsePrefix(s string, mode ParseMode) (*Term, int, error) {
	p := &termParser{src: s, mode: mode}
	t, err := p.parseTerm(true)
	if err != nil {
		return nil, 0, err
	}
	if err := t.Validate(); err != nil {
		return nil, 0, err
	}
	if mode == GroundMode && !t.IsGround() {
		return nil, 0, fmt.Errorf("label: %q is not a ground edge label", s[:p.pos])
	}
	return t, p.pos, nil
}

// MustParse is Parse that panics on error; intended for compile-time-constant
// labels in tests and the query catalog.
func MustParse(s string, mode ParseMode) *Term {
	t, err := Parse(s, mode)
	if err != nil {
		panic(err)
	}
	return t
}

type termParser struct {
	src  string
	pos  int
	mode ParseMode
}

func (p *termParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
}

func (p *termParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *termParser) errf(format string, args ...any) error {
	return &ParseError{Src: p.src, Off: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// parseTerm parses a term. top distinguishes top-level position (where bare
// identifiers are constructors) from argument position.
func (p *termParser) parseTerm(top bool) (*Term, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '!':
		p.pos++
		// Allow parenthesized negation bodies: !(f(x)).
		p.skipSpace()
		if p.peek() == '(' {
			// Parenthesized negation body, possibly an alternation:
			// !(def(x)) or !(def(x)|use(x)).
			p.pos++
			var alts []*Term
			for {
				inner, err := p.parseTerm(top)
				if err != nil {
					return nil, err
				}
				alts = append(alts, inner)
				p.skipSpace()
				switch p.peek() {
				case '|':
					p.pos++
				case ')':
					p.pos++
					if len(alts) == 1 {
						return Neg(alts[0]), nil
					}
					return Neg(Or(alts...)), nil
				default:
					return nil, p.errf("expected '|' or ')' closing negation")
				}
			}
		}
		inner, err := p.parseTerm(top)
		if err != nil {
			return nil, err
		}
		return Neg(inner), nil
	case c == '_':
		p.pos++
		if p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
			// An identifier starting with '_' is an identifier, not a wildcard.
			p.pos--
			return p.parseIdentTerm(top)
		}
		return Wildcard(), nil
	case c == '\'' || c == '"':
		return p.parseQuoted(c)
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		return Sym(p.src[start:p.pos]), nil
	case isIdentStart(rune(c)):
		return p.parseIdentTerm(top)
	case c == 0:
		return nil, p.errf("unexpected end of input")
	default:
		return nil, p.errf("unexpected character %q", c)
	}
}

func (p *termParser) parseQuoted(quote byte) (*Term, error) {
	p.pos++ // opening quote
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return nil, p.errf("unterminated quoted symbol")
	}
	name := p.src[start:p.pos]
	p.pos++ // closing quote
	return Sym(name), nil
}

func (p *termParser) parseIdentTerm(top bool) (*Term, error) {
	ident := p.readIdent()
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		var args []*Term
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
			return App(ident), nil
		}
		for {
			a, err := p.parseTerm(false)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			p.skipSpace()
			switch p.peek() {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return App(ident, args...), nil
			default:
				return nil, p.errf("expected ',' or ')' in argument list")
			}
		}
	}
	if top {
		return App(ident), nil
	}
	if p.mode == PatternMode {
		return Param(ident), nil
	}
	return Sym(ident), nil
}

func (p *termParser) readIdent() string {
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '.' || c == '-' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// ParseArgsHint reports whether s looks like it begins a term; used by the
// graph file reader for friendlier errors.
func ParseArgsHint(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	r := rune(s[0])
	return r == '!' || r == '_' || isIdentStart(r)
}
