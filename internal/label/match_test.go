package label

import (
	"math/rand"
	"testing"
)

// env builds a compiled pattern label and ground edge label sharing one
// universe and parameter space.
type env struct {
	u  *Universe
	ps *ParamSpace
}

func newEnv() *env { return &env{u: NewUniverse(), ps: &ParamSpace{}} }

func (e *env) tl(s string) *CTerm {
	return MustCompile(MustParse(s, PatternMode), e.u, e.ps)
}

func (e *env) el(s string) *CTerm {
	c, err := CompileGround(MustParse(s, GroundMode), e.u)
	if err != nil {
		panic(err)
	}
	return c
}

func (e *env) subst(pairs ...string) []int32 {
	s := make([]int32, e.ps.Len())
	for i := range s {
		s[i] = NoSym
	}
	for i := 0; i+1 < len(pairs); i += 2 {
		p, ok := e.ps.Lookup(pairs[i])
		if !ok {
			panic("unknown parameter " + pairs[i])
		}
		s[p] = e.u.Syms.Intern(pairs[i+1])
	}
	return s
}

func TestMatchADPositive(t *testing.T) {
	e := newEnv()
	tl := e.tl("def(x)")
	m := MatchAD(tl, e.el("def(a)"))
	if !m.OK {
		t.Fatalf("def(x) should match def(a)")
	}
	if len(m.Agree) != 1 || len(m.Disagrees) != 0 {
		t.Fatalf("agree/disagree = %v/%v, want one agree binding", m.Agree, m.Disagrees)
	}
	x, _ := e.ps.Lookup("x")
	a, _ := e.u.Syms.Lookup("a")
	if m.Agree[0] != (Binding{Param: x, Sym: a}) {
		t.Errorf("agree = %v, want x↦a", m.Agree)
	}

	if MatchAD(tl, e.el("use(a)")).OK {
		t.Errorf("def(x) matched use(a)")
	}
	if MatchAD(tl, e.el("def(a,5)")).OK {
		t.Errorf("def(x) matched def(a,5): arity should matter")
	}
}

func TestMatchADRepeatedParam(t *testing.T) {
	e := newEnv()
	tl := e.tl("eq(x,x)")
	if !MatchAD(tl, e.el("eq(a,a)")).OK {
		t.Errorf("eq(x,x) should match eq(a,a)")
	}
	if MatchAD(tl, e.el("eq(a,b)")).OK {
		t.Errorf("eq(x,x) matched eq(a,b)")
	}
}

func TestMatchADWildcard(t *testing.T) {
	e := newEnv()
	if !MatchAD(e.tl("_"), e.el("def(a)")).OK {
		t.Errorf("_ should match anything")
	}
	if !MatchAD(e.tl("def(_)"), e.el("def(a)")).OK {
		t.Errorf("def(_) should match def(a)")
	}
	if MatchAD(e.tl("def(_)"), e.el("use(a)")).OK {
		t.Errorf("def(_) matched use(a)")
	}
	m := MatchAD(e.tl("use(x,_)"), e.el("use(a,17)"))
	if !m.OK || len(m.Agree) != 1 {
		t.Errorf("use(x,_) vs use(a,17): %+v", m)
	}
}

func TestMatchADGroundSymbols(t *testing.T) {
	e := newEnv()
	if !MatchAD(e.tl("def('a')"), e.el("def(a)")).OK {
		t.Errorf("def('a') should match def(a)")
	}
	if MatchAD(e.tl("def('a')"), e.el("def(b)")).OK {
		t.Errorf("def('a') matched def(b)")
	}
	// Parameters only instantiate to symbols, not nested applications.
	if MatchAD(e.tl("f(x)"), e.el("f(g(a))")).OK {
		t.Errorf("parameter matched a constructor application")
	}
	// But nested pattern applications match nested ground applications.
	if !MatchAD(e.tl("f(g(x))"), e.el("f(g(a))")).OK {
		t.Errorf("f(g(x)) should match f(g(a))")
	}
}

func TestMatchADNegationGround(t *testing.T) {
	e := newEnv()
	// Whole-label negation with no parameters: pure check.
	if MatchAD(e.tl("!def('a')"), e.el("def(a)")).OK {
		t.Errorf("!def('a') matched def(a)")
	}
	if !MatchAD(e.tl("!def('a')"), e.el("def(b)")).OK {
		t.Errorf("!def('a') should match def(b)")
	}
	if !MatchAD(e.tl("!def('a')"), e.el("use(a)")).OK {
		t.Errorf("!def('a') should match use(a)")
	}
	// Argument-level ground negation (the seteuid example, Section 2.2).
	if MatchAD(e.tl("seteuid(!0)"), e.el("seteuid(0)")).OK {
		t.Errorf("seteuid(!0) matched seteuid(0)")
	}
	if !MatchAD(e.tl("seteuid(!0)"), e.el("seteuid(1)")).OK {
		t.Errorf("seteuid(!0) should match seteuid(1)")
	}
	// Negated wildcard never matches.
	if MatchAD(e.tl("!_"), e.el("def(a)")).OK {
		t.Errorf("!_ matched def(a)")
	}
	if !MatchAD(e.tl("!def(_)"), e.el("use(a)")).OK {
		t.Errorf("!def(_) should match use(a)")
	}
	if MatchAD(e.tl("!def(_)"), e.el("def(a)")).OK {
		t.Errorf("!def(_) matched def(a)")
	}
}

func TestMatchADNegationWithParam(t *testing.T) {
	e := newEnv()
	// The paper's running example: match(!def(x), def(a)) — matches under
	// {x↦b} for every b ≠ a, represented as disagree = {x↦a}.
	m := MatchAD(e.tl("!def(x)"), e.el("def(a)"))
	if !m.OK {
		t.Fatalf("!def(x) vs def(a) should be matchable")
	}
	if len(m.Agree) != 0 || len(m.Disagrees) != 1 || len(m.Disagrees[0]) != 1 {
		t.Fatalf("agree/disagree = %v/%v, want disagree {x↦a}", m.Agree, m.Disagrees)
	}
	x, _ := e.ps.Lookup("x")
	a, _ := e.u.Syms.Lookup("a")
	if m.Disagrees[0][0] != (Binding{Param: x, Sym: a}) {
		t.Errorf("disagree = %v, want x↦a", m.Disagrees)
	}
	// Constructor mismatch inside the negation: matches with no constraint.
	m = MatchAD(e.tl("!def(x)"), e.el("use(a)"))
	if !m.OK || len(m.Disagrees) != 0 {
		t.Errorf("!def(x) vs use(a): %+v, want ok with empty disagree", m)
	}
}

func TestMatchADArgLevelNegParam(t *testing.T) {
	e := newEnv()
	// The paper's example: match(def(x,!c), def(a,5)) = {({x↦a}, {c↦5})}.
	m := MatchAD(e.tl("def(x,!c)"), e.el("def(a,5)"))
	if !m.OK || len(m.Agree) != 1 || len(m.Disagrees) != 1 {
		t.Fatalf("def(x,!c) vs def(a,5): %+v", m)
	}
	x, _ := e.ps.Lookup("x")
	c, _ := e.ps.Lookup("c")
	a, _ := e.u.Syms.Lookup("a")
	five, _ := e.u.Syms.Lookup("5")
	if m.Agree.Get(x) != a || m.Disagrees[0].Get(c) != five {
		t.Errorf("got agree %v disagree %v", m.Agree, m.Disagrees)
	}
}

func TestMatchADNegBodyInternalConflict(t *testing.T) {
	e := newEnv()
	// !eq(x,x) vs eq(a,b): the body can never match, so the negation holds
	// unconditionally.
	m := MatchAD(e.tl("!eq(x,x)"), e.el("eq(a,b)"))
	if !m.OK || len(m.Disagrees) != 0 {
		t.Errorf("!eq(x,x) vs eq(a,b): %+v, want unconditional match", m)
	}
	// !eq(x,x) vs eq(a,a): disagree {x↦a} after removing the redundant
	// duplicate binding.
	m = MatchAD(e.tl("!eq(x,x)"), e.el("eq(a,a)"))
	if !m.OK || len(m.Disagrees) != 1 || len(m.Disagrees[0]) != 1 {
		t.Errorf("!eq(x,x) vs eq(a,a): %+v, want one disagree binding", m)
	}
}

func TestMatchGroundAgainstAD(t *testing.T) {
	// Property: for AD-compatible labels and full substitutions θ,
	// MatchGround(tl, el, θ) holds iff θ ⊇-consistent with Agree and θ
	// contradicts some Disagree binding (or Disagree is empty).
	e := newEnv()
	labels := []*CTerm{
		e.tl("def(x)"),
		e.tl("!def(x)"),
		e.tl("def(x,!c)"),
		e.tl("use(x,y)"),
		e.tl("_"),
		e.tl("!def('a')"),
		e.tl("f(g(x),!h(y))"),
	}
	edges := []*CTerm{
		e.el("def(a)"), e.el("def(b)"), e.el("use(a,b)"), e.el("def(a,5)"),
		e.el("f(g(a),h(b))"), e.el("f(g(b),h(a))"), e.el("use(a)"),
	}
	syms := e.u.AllSymbols()
	pars := e.ps.Len()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		tl := labels[rng.Intn(len(labels))]
		el := edges[rng.Intn(len(edges))]
		// Random full substitution.
		th := make([]int32, pars)
		for i := range th {
			th[i] = syms[rng.Intn(len(syms))]
		}
		want := MatchGround(tl, el, th)
		m := MatchAD(tl, el)
		got := false
		if m.OK {
			got = true
			for _, b := range m.Agree {
				if th[b.Param] != b.Sym {
					got = false
				}
			}
			for _, d := range m.Disagrees {
				if !got {
					break
				}
				contra := false
				for _, b := range d {
					if th[b.Param] != b.Sym {
						contra = true
					}
				}
				got = got && contra
			}
		}
		if got != want {
			t.Fatalf("trial %d: tl=%s el=%s θ=%v: AD says %v, ground says %v (match %+v)",
				trial, tl.Format(e.u, e.ps), el.Format(e.u, nil), th, got, want, m)
		}
	}
}

func TestMatchGroundUnboundParam(t *testing.T) {
	e := newEnv()
	tl := e.tl("def(x)")
	el := e.el("def(a)")
	if MatchGround(tl, el, e.subst()) {
		t.Errorf("MatchGround with unbound parameter should not match")
	}
	if !MatchGround(tl, el, e.subst("x", "a")) {
		t.Errorf("MatchGround with x↦a should match def(a)")
	}
	if MatchGround(tl, el, e.subst("x", "b")) {
		t.Errorf("MatchGround with x↦b matched def(a)")
	}
	// Negation body with unbound parameter: θ(tl) not ground, no match.
	if MatchGround(e.tl("!use(y)"), el, e.subst("x", "a")) {
		t.Errorf("negation over unbound parameter should not match")
	}
}

func TestCoveredBy(t *testing.T) {
	e := newEnv()
	tl := e.tl("use(x,y)")
	if CoveredBy(tl, e.subst("x", "a")) {
		t.Errorf("x-only substitution covers use(x,y)")
	}
	if !CoveredBy(tl, e.subst("x", "a", "y", "b")) {
		t.Errorf("full substitution does not cover use(x,y)")
	}
}

func TestBindings(t *testing.T) {
	var bs Bindings
	if !bs.bind(1, 10) || !bs.bind(0, 20) || !bs.bind(1, 10) {
		t.Fatalf("consistent binds failed")
	}
	if bs.bind(1, 11) {
		t.Fatalf("conflicting bind succeeded")
	}
	bs.normalize()
	if bs[0].Param != 0 || bs[1].Param != 1 {
		t.Errorf("normalize did not sort: %v", bs)
	}
	if bs.Get(0) != 20 || bs.Get(1) != 10 || bs.Get(9) != NoSym {
		t.Errorf("Get misbehaves: %v", bs)
	}
	cl := bs.Clone()
	cl[0].Sym = 99
	if bs[0].Sym == 99 {
		t.Errorf("Clone aliases the original")
	}
}

func TestCTermClassification(t *testing.T) {
	e := newEnv()
	cases := []struct {
		src  string
		ad   bool
		negP int
	}{
		{"def(x)", true, 0},
		{"!def(x)", true, 1},
		{"def(x,!c)", true, 1},
		{"!def('a')", true, 0},
		{"f(!x,!y)", false, 2},
		{"!(!def(x))", false, 2},
		{"_", true, 0},
	}
	for _, c := range cases {
		tl := e.tl(c.src)
		if got := tl.ADCompatible(); got != c.ad {
			t.Errorf("%s: ADCompatible = %v, want %v", c.src, got, c.ad)
		}
		if got := tl.NumNegWithParams(); got != c.negP {
			t.Errorf("%s: NumNegWithParams = %d, want %d", c.src, got, c.negP)
		}
	}
}

func TestCTermInstantiate(t *testing.T) {
	e := newEnv()
	tl := e.tl("use(x,!def(y))")
	inst, ground := tl.Instantiate(e.subst("x", "a"))
	if ground {
		t.Errorf("partially instantiated term reported ground")
	}
	if inst.Args[0].Kind != KSym {
		t.Errorf("x was not instantiated: %v", inst.Args[0].Kind)
	}
	full, ground := tl.Instantiate(e.subst("x", "a", "y", "b"))
	if !ground {
		t.Errorf("fully instantiated term reported non-ground")
	}
	if full.HasParams() {
		t.Errorf("instantiated term still has parameters")
	}
	// The instantiated label matches the same edges as the original under θ.
	el := e.el("use(a,q)")
	if !MatchGround(full, el, nil) {
		t.Errorf("instantiated use('a',!def('b')) should match use(a,q)")
	}
}

func TestCTermKeyDistinguishes(t *testing.T) {
	e := newEnv()
	pairs := [][2]string{
		{"def(x)", "def(y)"},
		{"def(x)", "use(x)"},
		{"def(x)", "!def(x)"},
		{"def('a')", "def(x)"},
		{"def(_)", "def(x)"},
		{"f(g(x))", "f(x)"},
	}
	for _, p := range pairs {
		a, b := e.tl(p[0]), e.tl(p[1])
		if a.Key() == b.Key() {
			t.Errorf("keys of %s and %s collide: %q", p[0], p[1], a.Key())
		}
	}
	if e.tl("def(x)").Key() != e.tl("def( x )").Key() {
		t.Errorf("equal labels have different keys")
	}
}

func TestPositivePositions(t *testing.T) {
	e := newEnv()
	tl := e.tl("use(x,!def(y))")
	pos := map[[3]int32]bool{}
	tl.PositivePositions(func(p, ctor int32, arg int) {
		pos[[3]int32{p, ctor, int32(arg)}] = true
	})
	useC, _ := e.u.Ctors.Lookup("use")
	x, _ := e.ps.Lookup("x")
	if !pos[[3]int32{x, useC, 0}] {
		t.Errorf("x at use/0 not reported positively: %v", pos)
	}
	if len(pos) != 1 {
		t.Errorf("expected exactly one positive position, got %v", pos)
	}
	all := 0
	tl.AllPositions(func(p, ctor int32, arg int) { all++ })
	if all != 2 {
		t.Errorf("AllPositions reported %d, want 2", all)
	}
}
