package label

import (
	"strings"
	"testing"
)

func TestTermBuildersAndString(t *testing.T) {
	cases := []struct {
		term *Term
		want string
	}{
		{App("def", Param("x")), "def(x)"},
		{App("def", Sym("a")), "def('a')"},
		{App("def", Sym("a"), Sym("5")), "def('a',5)"},
		{Neg(App("def", Param("x"))), "!def(x)"},
		{Wildcard(), "_"},
		{App("exit"), "exit()"},
		{App("f", Neg(Param("c"))), "f(!c)"},
		{App("f", App("g", Sym("a"))), "f(g('a'))"},
		{App("seteuid", Neg(Sym("0"))), "seteuid(!0)"},
		{Neg(Neg(App("f"))), "!(!f())"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTermEqual(t *testing.T) {
	a := App("def", Param("x"), Sym("5"))
	b := App("def", Param("x"), Sym("5"))
	if !a.Equal(b) {
		t.Errorf("structurally equal terms reported unequal")
	}
	if a.Equal(App("def", Param("y"), Sym("5"))) {
		t.Errorf("terms with different parameters reported equal")
	}
	if a.Equal(App("use", Param("x"), Sym("5"))) {
		t.Errorf("terms with different constructors reported equal")
	}
	if a.Equal(App("def", Param("x"))) {
		t.Errorf("terms with different arity reported equal")
	}
	if a.Equal(nil) {
		t.Errorf("term equal to nil")
	}
	var n *Term
	if !n.Equal(nil) {
		t.Errorf("nil not equal to nil")
	}
}

func TestTermIsGround(t *testing.T) {
	if !App("def", Sym("a")).IsGround() {
		t.Errorf("def('a') should be ground")
	}
	if !App("f", App("g", Sym("a")), Sym("b")).IsGround() {
		t.Errorf("nested ground application should be ground")
	}
	for _, tm := range []*Term{
		App("def", Param("x")),
		Wildcard(),
		Neg(App("def", Sym("a"))),
		App("f", Wildcard()),
		App("f", Neg(Sym("a"))),
	} {
		if tm.IsGround() {
			t.Errorf("%s should not be ground", tm)
		}
	}
}

func TestTermParams(t *testing.T) {
	tm := App("f", Param("x"), Neg(App("g", Param("y"), Param("x"))), Sym("a"))
	got := tm.Params()
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Params() = %v, want [x y]", got)
	}
	if n := len(App("f", Sym("a")).Params()); n != 0 {
		t.Errorf("ground term has %d params, want 0", n)
	}
}

func TestTermSize(t *testing.T) {
	if got := App("f", Param("x"), App("g", Sym("a"))).Size(); got != 4 {
		t.Errorf("Size() = %d, want 4", got)
	}
	if got := Wildcard().Size(); got != 1 {
		t.Errorf("Size(_) = %d, want 1", got)
	}
	if got := Neg(App("f", Sym("a"))).Size(); got != 3 {
		t.Errorf("Size(!f('a')) = %d, want 3", got)
	}
}

func TestTermValidate(t *testing.T) {
	good := []*Term{
		App("def", Param("x")),
		Neg(App("def", Param("x"))),
		Wildcard(),
		App("f", Neg(Param("c"))),
		Neg(Neg(App("f"))),
	}
	for _, tm := range good {
		if err := tm.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", tm, err)
		}
	}
	bad := []*Term{
		Sym("a"),   // bare symbol at top level
		Param("x"), // bare parameter at top level
		Neg(Sym("a")),
		Neg(Param("x")),
		{Kind: KApp, Name: ""},
		{Kind: KNeg, Args: []*Term{App("f"), App("g")}},
		{Kind: KApp, Name: "f", Args: []*Term{{Kind: KSym, Name: "a", Args: []*Term{App("g")}}}},
	}
	for _, tm := range bad {
		if err := tm.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", tm)
		}
	}
}

func TestTermStringQuoting(t *testing.T) {
	tm := App("f", Sym("weird symbol!"))
	s := tm.String()
	if !strings.Contains(s, "'weird symbol!'") {
		t.Errorf("String() = %q, want quoted symbol", s)
	}
}
