package label

import "testing"

func benchEnv() (*Universe, *ParamSpace, map[string]*CTerm) {
	u := NewUniverse()
	ps := &ParamSpace{}
	tls := map[string]*CTerm{}
	for _, s := range []string{
		"def(x)", "!def(x)", "use(x,l)", "!(def(x)|use(x,_))", "_",
		"exp(x,op,y)", "f(g(x),!h(y))",
	} {
		tls[s] = MustCompile(MustParse(s, PatternMode), u, ps)
	}
	for _, s := range []string{"def(a)", "use(a,17)", "exp(a,plus,b)", "nop()", "f(g(a),h(b))"} {
		c, err := CompileGround(MustParse(s, GroundMode), u)
		if err != nil {
			panic(err)
		}
		tls["EL:"+s] = c
	}
	return u, ps, tls
}

func BenchmarkMatchADPositive(b *testing.B) {
	_, _, tls := benchEnv()
	tl, el := tls["def(x)"], tls["EL:def(a)"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !MatchAD(tl, el).OK {
			b.Fatal("no match")
		}
	}
}

func BenchmarkMatchADNegation(b *testing.B) {
	_, _, tls := benchEnv()
	tl, el := tls["!def(x)"], tls["EL:def(a)"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !MatchAD(tl, el).OK {
			b.Fatal("no match")
		}
	}
}

func BenchmarkMatchADNegatedAlternation(b *testing.B) {
	_, _, tls := benchEnv()
	tl, el := tls["!(def(x)|use(x,_))"], tls["EL:exp(a,plus,b)"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !MatchAD(tl, el).OK {
			b.Fatal("no match")
		}
	}
}

func BenchmarkMatchGroundDeep(b *testing.B) {
	u, ps, tls := benchEnv()
	tl, el := tls["f(g(x),!h(y))"], tls["EL:f(g(a),h(b))"]
	th := make([]int32, ps.Len())
	for i := range th {
		th[i] = 0
	}
	x, _ := ps.Lookup("x")
	y, _ := ps.Lookup("y")
	a, _ := u.Syms.Lookup("a")
	c := u.Syms.Intern("c")
	th[x], th[y] = a, c
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !MatchGround(tl, el, th) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	t := MustParse("!(def(x)|use(x,_))", PatternMode)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := NewUniverse()
		ps := &ParamSpace{}
		if _, err := Compile(t, u, ps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLabel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("_* ", PatternMode); err == nil {
			b.Fatal("trailing should fail")
		}
		if _, err := Parse("!(def(x)|use(x,_))", PatternMode); err != nil {
			b.Fatal(err)
		}
	}
}
