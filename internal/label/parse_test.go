package label

import "testing"

func TestParsePatternMode(t *testing.T) {
	cases := []struct {
		in   string
		want *Term
	}{
		{"def(x)", App("def", Param("x"))},
		{"def(x, c)", App("def", Param("x"), Param("c"))},
		{"def('a')", App("def", Sym("a"))},
		{"def(\"a\")", App("def", Sym("a"))},
		{"def(x, 5)", App("def", Param("x"), Sym("5"))},
		{"!def(x)", Neg(App("def", Param("x")))},
		{"_", Wildcard()},
		{"exit()", App("exit")},
		{"exit", App("exit")},
		{"use(x, _)", App("use", Param("x"), Wildcard())},
		{"seteuid(!0)", App("seteuid", Neg(Sym("0")))},
		{"f(!c)", App("f", Neg(Param("c")))},
		{"state(s)", App("state", Param("s"))},
		{"f(g(x), 'a')", App("f", App("g", Param("x")), Sym("a"))},
		{"!(def(x))", Neg(App("def", Param("x")))},
		{" def ( x ) ", App("def", Param("x"))},
		{"f(_x)", App("f", Param("_x"))},
	}
	for _, c := range cases {
		got, err := Parse(c.in, PatternMode)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseGroundMode(t *testing.T) {
	cases := []struct {
		in   string
		want *Term
	}{
		{"def(a)", App("def", Sym("a"))},
		{"def(a, 5)", App("def", Sym("a"), Sym("5"))},
		{"exit()", App("exit")},
		{"act(i)", App("act", Sym("i"))},
		{"f(g(a))", App("f", App("g", Sym("a")))},
		{"use(x, 17)", App("use", Sym("x"), Sym("17"))},
	}
	for _, c := range cases {
		got, err := Parse(c.in, GroundMode)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	patternBad := []string{
		"",
		"def(",
		"def(x",
		"def(x,)",
		"def)x(",
		"'a'",      // bare symbol at top level is not a label
		"def(x) y", // trailing input
		"f('unterminated)",
		"!",
		"!(f(x)",
		"f(x;y)",
	}
	for _, in := range patternBad {
		if _, err := Parse(in, PatternMode); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
	groundBad := []string{
		"def(x)y",
		"_",       // wildcard is not ground
		"!def(a)", // negation is not ground
		"f(_)",    // wildcard argument is not ground
	}
	for _, in := range groundBad {
		if _, err := Parse(in, GroundMode); err == nil {
			t.Errorf("Parse(%q) in ground mode succeeded, want error", in)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"def(x)",
		"!def(x)",
		"use(x,_)",
		"f(!c,'a')",
		"seteuid(!0)",
		"_",
		"exit()",
		"f(g(x),h('b',y))",
	}
	for _, in := range inputs {
		tm := MustParse(in, PatternMode)
		back, err := Parse(tm.String(), PatternMode)
		if err != nil {
			t.Errorf("round trip parse of %q (printed %q) failed: %v", in, tm.String(), err)
			continue
		}
		if !back.Equal(tm) {
			t.Errorf("round trip of %q: got %s, want %s", in, back, tm)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParse on invalid input did not panic")
		}
	}()
	MustParse("def(", PatternMode)
}

func TestParseArgsHint(t *testing.T) {
	if !ParseArgsHint("def(a)") || !ParseArgsHint("  !x") || !ParseArgsHint("_") {
		t.Errorf("ParseArgsHint false negatives")
	}
	if ParseArgsHint("") || ParseArgsHint("   ") || ParseArgsHint("(x)") {
		t.Errorf("ParseArgsHint false positives")
	}
}
