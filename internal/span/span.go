// Package span provides byte-offset source spans over query sources (pattern
// and label text), with 1-based line:column rendering and trimmed caret
// snippets for diagnostics. The pattern parser attaches a Span to every AST
// node, and the static analyzer (internal/analyze) and the parsers' own
// errors report positions through it.
package span

import (
	"fmt"
	"strings"
)

// Span is a half-open byte-offset range [Start, End) into a source string.
// The zero value is "no span"; a point position at offset n is Span{n, n+1}
// clamped to the source by the renderer.
type Span struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// New returns the span [start, end); it normalizes end < start to a point
// span at start.
func New(start, end int) Span {
	if end < start {
		end = start + 1
	}
	return Span{Start: start, End: end}
}

// Point returns the one-byte span at offset off.
func Point(off int) Span { return Span{Start: off, End: off + 1} }

// Valid reports whether the span carries source information. The zero Span
// is invalid, so nodes built programmatically (pattern.Seq, Simplify output)
// report no position.
func (s Span) Valid() bool { return s.End > s.Start && s.Start >= 0 }

// Join returns the smallest span covering both s and o; an invalid operand
// yields the other.
func (s Span) Join(o Span) Span {
	if !s.Valid() {
		return o
	}
	if !o.Valid() {
		return s
	}
	out := s
	if o.Start < out.Start {
		out.Start = o.Start
	}
	if o.End > out.End {
		out.End = o.End
	}
	return out
}

// Pos is a 1-based line and column (both counted in bytes; the sources are
// ASCII-oriented query strings).
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// PosOf locates byte offset off within src. Offsets past the end report the
// position just after the last byte.
func PosOf(src string, off int) Pos {
	if off < 0 {
		off = 0
	}
	if off > len(src) {
		off = len(src)
	}
	line, col := 1, 1
	for i := 0; i < off; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return Pos{Line: line, Col: col}
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Format renders the span against its source as "1:5-1:9" ("1:5" for a
// one-byte span, "?" for an invalid one).
func Format(src string, s Span) string {
	if !s.Valid() {
		return "?"
	}
	start := PosOf(src, s.Start)
	if s.End-s.Start <= 1 {
		return start.String()
	}
	// End is exclusive; report the last covered byte.
	end := PosOf(src, s.End-1)
	if start == end {
		return start.String()
	}
	return start.String() + "-" + end.String()
}

// snippetWidth bounds the source excerpt shown in caret snippets; long
// generated patterns are trimmed around the span with "…" markers.
const snippetWidth = 64

// Caret renders a two-line snippet: the source line containing the span
// (trimmed to snippetWidth around it) and a caret underline covering the
// span's extent on that line. Multi-line spans underline to the end of the
// first line. It returns "" for an invalid span.
func Caret(src string, s Span) string {
	if !s.Valid() {
		return ""
	}
	start := s.Start
	if start > len(src) {
		start = len(src)
	}
	// Find the line containing start.
	lineStart := strings.LastIndexByte(src[:start], '\n') + 1
	lineEnd := len(src)
	if i := strings.IndexByte(src[lineStart:], '\n'); i >= 0 {
		lineEnd = lineStart + i
	}
	end := s.End
	if end > lineEnd {
		end = lineEnd
	}
	if end <= start {
		end = start + 1
	}

	// Trim the line to a window around the span.
	winStart, winEnd := lineStart, lineEnd
	prefix, suffix := "", ""
	if winEnd-winStart > snippetWidth {
		mid := (start + end) / 2
		winStart = mid - snippetWidth/2
		if winStart < lineStart {
			winStart = lineStart
		}
		winEnd = winStart + snippetWidth
		if winEnd > lineEnd {
			winEnd = lineEnd
			winStart = winEnd - snippetWidth
		}
		// ASCII ellipses keep the caret underline byte-aligned with the
		// rendered snippet.
		if winStart > lineStart {
			prefix = "..."
		}
		if winEnd < lineEnd {
			suffix = "..."
		}
	}
	line := prefix + src[winStart:winEnd] + suffix

	caretStart := len(prefix) + start - winStart
	caretLen := end - start
	if caretStart < 0 {
		caretStart = 0
	}
	if caretLen < 1 {
		caretLen = 1
	}
	if caretStart+caretLen > len(line) {
		caretLen = len(line) - caretStart
		if caretLen < 1 {
			caretLen = 1
		}
	}
	var b strings.Builder
	b.WriteString(line)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", caretStart))
	b.WriteByte('^')
	if caretLen > 1 {
		b.WriteString(strings.Repeat("~", caretLen-1))
	}
	return b.String()
}
