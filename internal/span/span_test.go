package span

import (
	"strings"
	"testing"
)

func TestPosOf(t *testing.T) {
	src := "abc\ndef\nghi"
	cases := []struct {
		off  int
		want Pos
	}{
		{0, Pos{1, 1}},
		{2, Pos{1, 3}},
		{3, Pos{1, 4}}, // the newline itself
		{4, Pos{2, 1}},
		{8, Pos{3, 1}},
		{10, Pos{3, 3}},
		{99, Pos{3, 4}}, // clamped past end
		{-5, Pos{1, 1}}, // clamped before start
	}
	for _, c := range cases {
		if got := PosOf(src, c.off); got != c.want {
			t.Errorf("PosOf(%d) = %v, want %v", c.off, got, c.want)
		}
	}
}

func TestFormat(t *testing.T) {
	src := "ab cd ef"
	if got := Format(src, New(3, 5)); got != "1:4-1:5" {
		t.Errorf("Format = %q, want 1:4-1:5", got)
	}
	if got := Format(src, Point(3)); got != "1:4" {
		t.Errorf("Format point = %q, want 1:4", got)
	}
	if got := Format(src, Span{}); got != "?" {
		t.Errorf("Format zero = %q, want ?", got)
	}
}

func TestJoin(t *testing.T) {
	a, b := New(2, 5), New(7, 9)
	if got := a.Join(b); got != (Span{2, 9}) {
		t.Errorf("Join = %v", got)
	}
	if got := (Span{}).Join(b); got != b {
		t.Errorf("Join with zero = %v", got)
	}
	if got := a.Join(Span{}); got != a {
		t.Errorf("Join zero arg = %v", got)
	}
}

func TestCaret(t *testing.T) {
	src := "(!def(x))* use(x)"
	got := Caret(src, New(11, 17))
	want := "(!def(x))* use(x)\n           ^~~~~~"
	if got != want {
		t.Errorf("Caret:\n%s\nwant:\n%s", got, want)
	}
}

func TestCaretTrimsLongLines(t *testing.T) {
	long := strings.Repeat("a", 200) + " use(x) " + strings.Repeat("b", 200)
	s := New(201, 207) // "use(x)"
	got := Caret(long, s)
	lines := strings.SplitN(got, "\n", 2)
	if len(lines) != 2 {
		t.Fatalf("Caret produced %d lines", len(lines))
	}
	if len(lines[0]) > snippetWidth+8 {
		t.Errorf("snippet line too long: %d bytes", len(lines[0]))
	}
	if !strings.Contains(lines[0], "use(x)") {
		t.Errorf("snippet lost the span text: %q", lines[0])
	}
	if !strings.HasPrefix(lines[0], "...") || !strings.HasSuffix(lines[0], "...") {
		t.Errorf("snippet not trimmed on both sides: %q", lines[0])
	}
	caretCol := strings.IndexByte(lines[1], '^')
	if caretCol < 0 || lines[0][caretCol:caretCol+1] != "u" {
		t.Errorf("caret misaligned: %q / %q", lines[0], lines[1])
	}
}

func TestCaretMultiline(t *testing.T) {
	src := "abc def\nghi"
	got := Caret(src, New(4, 11)) // spans across the newline
	want := "abc def\n    ^~~"
	if got != want {
		t.Errorf("Caret:\n%q\nwant:\n%q", got, want)
	}
}
