package gofront

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"rpq/internal/cfgschema"
	"rpq/internal/label"
	"rpq/internal/span"
)

// This file lowers one function body to CFG edges. Each unit builds in
// isolation — it reads only the pre-pass package tables (globals, top-level
// function names, per-file imports), which are frozen before the fan-out —
// so units are safe to build on parallel workers and their output depends
// only on the AST, never on scheduling.

type linkKind byte

const (
	linkCall linkKind = iota
	linkGo
)

// link is a deferred interprocedural edge: resolved against the merged
// function index because the callee may live in another unit.
type link struct {
	kind   linkKind
	from   string // vertex the call/go edge leaves
	resume string // vertex the ret edge returns to (linkCall only)
	callee string // candidate qualified name
}

type uedge struct {
	from, to string
	t        *label.Term
}

type unitResult struct {
	funcs []FuncInfo // declared function first, then literals in source order
	edges []uedge
	pos   map[string]Location
	links []link
	err   error
}

// deferOp is one registered defer: its effect label is re-emitted, in LIFO
// order, on every path that leaves the function after the registration.
type deferOp struct {
	eff    *label.Term
	callee string
	node   ast.Node
}

// loopCtx is an enclosing for/range/switch/select statement that break (and
// for loops, continue) can target.
type loopCtx struct {
	brk, cont string // cont == "" for switch/select contexts
	label     string
}

// fnState is the per-function builder state; literals push a nested state.
type fnState struct {
	qname     string
	nv        int
	retJoin   string
	exitV     string
	deferred  []deferOp
	shadow    map[string]int
	loops     []loopCtx
	labels    map[string]string // goto/label name -> vertex
	fallNext  string            // fallthrough target inside a switch clause
	literals  int
	deferSite int
	scopeBase int
}

type ub struct {
	fset *token.FileSet
	cfg  Config
	pkg  *pkgUnit
	file *parsedFile
	res  *unitResult

	scopes       []map[string]string
	fns          []*fnState
	pendingLabel string
}

func buildUnit(fset *token.FileSet, job *unitJob, cfg Config) (res *unitResult) {
	b := &ub{
		fset: fset,
		cfg:  cfg,
		pkg:  job.pkg,
		file: job.file,
		res:  &unitResult{pos: map[string]Location{}},
	}
	res = b.res
	defer func() {
		if r := recover(); r != nil {
			res.err = fmt.Errorf("gofront: internal error lowering %s: %v", job.qname, r)
		}
	}()
	fd := job.decl
	b.buildFunc(job.qname, fd.Recv, fd.Type, fd.Body, fd.Name)
	b.propagateDefs()
	return res
}

// propagateDefs adds, beside every def(x) edge, parallel def edges for each
// longer path symbol x.f... observed in the unit: rebinding a variable
// rebinds every resource reached through it, so stale close/lock facts
// about x.f must not survive `x = fresh()`. Runs per unit (pure, after the
// body is built), so it is parallel-safe and deterministic.
func (b *ub) propagateDefs() {
	defBase := map[string]bool{}
	for _, e := range b.res.edges {
		if s, ok := defSym(e.t); ok {
			defBase[s] = true
		}
	}
	if len(defBase) == 0 {
		return
	}
	ext := map[string][]string{}
	seen := map[string]bool{}
	for _, e := range b.res.edges {
		if e.t.Kind != label.KApp {
			continue
		}
		for _, a := range e.t.Args {
			if a.Kind != label.KSym || seen[a.Name] {
				continue
			}
			seen[a.Name] = true
			s := a.Name
			for i := strings.LastIndexByte(s, '.'); i > 0; i = strings.LastIndexByte(s[:i], '.') {
				if p := s[:i]; defBase[p] {
					ext[p] = append(ext[p], s)
				}
			}
		}
	}
	if len(ext) == 0 {
		return
	}
	for _, xs := range ext {
		sort.Strings(xs)
	}
	n := len(b.res.edges)
	for i := 0; i < n; i++ {
		e := b.res.edges[i]
		s, ok := defSym(e.t)
		if !ok {
			continue
		}
		for _, x := range ext[s] {
			b.edge(e.from, cfgschema.Def(x), e.to)
		}
	}
}

// defSym extracts the symbol of a plain single-argument def label.
func defSym(t *label.Term) (string, bool) {
	if t.Kind == label.KApp && t.Name == "def" && len(t.Args) == 1 && t.Args[0].Kind == label.KSym {
		return t.Args[0].Name, true
	}
	return "", false
}

// buildFunc lowers one function body (declaration or literal) and registers
// its FuncInfo. Caller scopes stay pushed, so literals resolve captured
// names through the enclosing function.
func (b *ub) buildFunc(qname string, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt, at ast.Node) {
	fn := &fnState{
		qname:     qname,
		retJoin:   qname + ".ret",
		exitV:     qname + ".exit",
		shadow:    map[string]int{},
		labels:    map[string]string{},
		scopeBase: len(b.scopes),
	}
	b.fns = append(b.fns, fn)
	b.pushScope()

	entry := qname + ".entry"
	b.res.funcs = append(b.res.funcs, FuncInfo{
		Name:    qname,
		Package: b.pkg.path,
		Entry:   entry,
		Exit:    fn.exitV,
		Loc:     b.loc(at),
	})

	// Receiver, parameters, and named results are defined at entry: they
	// are initialized before the body runs, so they can never trip the
	// decl-without-def query.
	cur := entry
	if recv != nil {
		for _, f := range recv.List {
			for _, n := range f.Names {
				cur = b.defIdent(cur, n)
			}
		}
	}
	if ftype.Params != nil {
		for _, f := range ftype.Params.List {
			for _, n := range f.Names {
				cur = b.defIdent(cur, n)
			}
		}
	}
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			for _, n := range f.Names {
				cur = b.defIdent(cur, n)
			}
		}
	}

	cur = b.stmts(cur, body.List)
	// Falling off the end runs every registered defer, then exits.
	cur = b.emitDefers(cur, len(fn.deferred))
	b.edge(cur, nop(), fn.retJoin)
	b.edge(fn.retJoin, cfgschema.ExitOf(qname), fn.exitV)

	b.popScope()
	b.fns = b.fns[:len(b.fns)-1]
}

func (b *ub) defIdent(cur string, n *ast.Ident) string {
	if n.Name == "_" {
		return cur
	}
	return b.step(cur, cfgschema.Def(b.declare(n.Name)), n)
}

// ---- builder plumbing ----

func (b *ub) fn() *fnState { return b.fns[len(b.fns)-1] }

func (b *ub) fresh() string {
	fn := b.fn()
	fn.nv++
	return fn.qname + ".n" + strconv.Itoa(fn.nv)
}

func (b *ub) edge(from string, t *label.Term, to string) {
	b.res.edges = append(b.res.edges, uedge{from: from, to: to, t: t})
}

// step adds cur -t-> fresh and records the fresh vertex's source location.
func (b *ub) step(cur string, t *label.Term, at ast.Node) string {
	v := b.fresh()
	b.edge(cur, t, v)
	if at != nil {
		b.res.pos[v] = b.loc(at)
	}
	return v
}

func (b *ub) loc(n ast.Node) Location {
	pos := b.fset.Position(n.Pos())
	end := b.fset.Position(n.End())
	return Location{
		File: pos.Filename,
		Line: pos.Line,
		Col:  pos.Column,
		Span: span.Span{Start: pos.Offset, End: end.Offset},
	}
}

func nop() *label.Term { return cfgschema.Nop() }

func (b *ub) pushScope() { b.scopes = append(b.scopes, map[string]string{}) }
func (b *ub) popScope()  { b.scopes = b.scopes[:len(b.scopes)-1] }

// declare binds name in the innermost scope to a fresh qualified symbol;
// shadowing redeclarations get #2, #3... suffixes.
func (b *ub) declare(name string) string {
	if name == "_" {
		return "_"
	}
	fn := b.fn()
	sym := fn.qname + "." + name
	if n := fn.shadow[name]; n > 0 {
		sym += "#" + strconv.Itoa(n+1)
	}
	fn.shadow[name]++
	b.scopes[len(b.scopes)-1][name] = sym
	return sym
}

// resolveVar resolves name through the lexical scope chain (including
// enclosing functions for literals), then package globals.
func (b *ub) resolveVar(name string) (string, bool) {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if sym, ok := b.scopes[i][name]; ok {
			return sym, sym != "_"
		}
	}
	if b.pkg.globals[name] {
		return b.pkg.path + "." + name, true
	}
	return "", false
}

// pathOf flattens a selector chain x.f.g rooted at a resolvable variable
// (or package global) into one qualified path symbol. Selector paths name
// resources syntactically — docs/gofront.md, "Approximations".
func (b *ub) pathOf(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if isBlank(x.Name) {
			return "", false
		}
		return b.resolveVarOK(x.Name)
	case *ast.ParenExpr:
		return b.pathOf(x.X)
	case *ast.SelectorExpr:
		base, ok := b.pathOf(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// baseIdent returns the root identifier of a selector chain (`a` in
// `a.b.c`), or false when the chain hangs off a non-identifier expression.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, !isBlank(x.Name)
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// nilableType reports whether a declared type is syntactically one whose
// zero value is nil — slice, map, chan, pointer, func, interface, or the
// error ident. Named types that happen to be nilable (io.Reader) cannot be
// known without go/types and report false.
func nilableType(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.StarExpr, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.InterfaceType:
		return true
	case *ast.ArrayType:
		return x.Len == nil // slice, not array
	case *ast.Ident:
		return x.Name == "error"
	case *ast.ParenExpr:
		return nilableType(x.X)
	}
	return false
}

func (b *ub) resolveVarOK(name string) (string, bool) {
	sym, ok := b.resolveVar(name)
	if !ok || sym == "_" {
		return "", false
	}
	return sym, true
}

func isBlank(name string) bool { return name == "_" }

var builtinFuncs = map[string]bool{
	"append": true, "cap": true, "clear": true, "complex": true,
	"copy": true, "delete": true, "imag": true, "len": true,
	"make": true, "max": true, "min": true, "new": true,
	"print": true, "println": true, "real": true, "recover": true,
}

// ---- statements ----

func (b *ub) stmts(cur string, list []ast.Stmt) string {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *ub) stmt(cur string, s ast.Stmt) string {
	switch x := s.(type) {
	case nil:
		return cur
	case *ast.BlockStmt:
		b.pushScope()
		cur = b.stmts(cur, x.List)
		b.popScope()
		return cur
	case *ast.EmptyStmt:
		return cur
	case *ast.ExprStmt:
		return b.expr(cur, x.X)
	case *ast.AssignStmt:
		return b.assign(cur, x)
	case *ast.IncDecStmt:
		// x++ both reads and writes, but emitting the read would flag every
		// zero-value accumulator; the write is what dataflow queries need.
		if p, ok := b.pathOf(x.X); ok {
			return b.step(cur, cfgschema.Def(p), x)
		}
		return b.expr(cur, x.X)
	case *ast.DeclStmt:
		return b.declStmt(cur, x)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			cur = b.expr(cur, r)
		}
		cur = b.emitDefers(cur, len(b.fn().deferred))
		b.edge(cur, nop(), b.fn().retJoin)
		return b.fresh() // anything after a return is unreachable
	case *ast.IfStmt:
		return b.ifStmt(cur, x)
	case *ast.ForStmt:
		return b.forStmt(cur, x, b.takeLabel())
	case *ast.RangeStmt:
		return b.rangeStmt(cur, x, b.takeLabel())
	case *ast.SwitchStmt:
		return b.switchStmt(cur, x, b.takeLabel())
	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(cur, x, b.takeLabel())
	case *ast.SelectStmt:
		return b.selectStmt(cur, x, b.takeLabel())
	case *ast.SendStmt:
		cur = b.expr(cur, x.Value)
		if p, ok := b.pathOf(x.Chan); ok {
			cur = b.step(cur, cfgschema.Use(p), x.Chan)
			return b.step(cur, cfgschema.Send(p), x)
		}
		return b.expr(cur, x.Chan)
	case *ast.GoStmt:
		return b.goStmt(cur, x)
	case *ast.DeferStmt:
		return b.deferStmt(cur, x)
	case *ast.BranchStmt:
		return b.branch(cur, x)
	case *ast.LabeledStmt:
		return b.labeled(cur, x)
	}
	// Unhandled statement forms contribute no labels.
	return cur
}

// takeLabel consumes the pending statement label set by labeled(), so a
// labeled loop registers under its label for break/continue targeting.
func (b *ub) takeLabel() string {
	lbl := b.pendingLabel
	b.pendingLabel = ""
	return lbl
}

func (b *ub) labeled(cur string, x *ast.LabeledStmt) string {
	v := b.labelVertex(x.Label.Name)
	b.edge(cur, nop(), v)
	b.pendingLabel = x.Label.Name
	out := b.stmt(v, x.Stmt)
	b.pendingLabel = ""
	return out
}

func (b *ub) labelVertex(name string) string {
	fn := b.fn()
	if v, ok := fn.labels[name]; ok {
		return v
	}
	v := b.fresh()
	fn.labels[name] = v
	return v
}

func (b *ub) branch(cur string, x *ast.BranchStmt) string {
	fn := b.fn()
	name := ""
	if x.Label != nil {
		name = x.Label.Name
	}
	switch x.Tok {
	case token.GOTO:
		b.edge(cur, nop(), b.labelVertex(name))
		return b.fresh()
	case token.FALLTHROUGH:
		if fn.fallNext != "" {
			b.edge(cur, nop(), fn.fallNext)
		}
		return b.fresh()
	case token.BREAK:
		for i := len(fn.loops) - 1; i >= 0; i-- {
			if name == "" || fn.loops[i].label == name {
				b.edge(cur, nop(), fn.loops[i].brk)
				return b.fresh()
			}
		}
	case token.CONTINUE:
		for i := len(fn.loops) - 1; i >= 0; i-- {
			if fn.loops[i].cont != "" && (name == "" || fn.loops[i].label == name) {
				b.edge(cur, nop(), fn.loops[i].cont)
				return b.fresh()
			}
		}
	}
	return b.fresh()
}

func (b *ub) declStmt(cur string, x *ast.DeclStmt) string {
	gd, ok := x.Decl.(*ast.GenDecl)
	if !ok {
		return cur
	}
	switch gd.Tok {
	case token.VAR:
		for _, sp := range gd.Specs {
			vs, ok := sp.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				cur = b.expr(cur, v)
			}
			for _, n := range vs.Names {
				if n.Name == "_" {
					continue
				}
				sym := b.declare(n.Name)
				if len(vs.Values) == 0 {
					if nilableType(vs.Type) {
						// `var x []T` / map / chan / *T / func / interface /
						// error: the nil zero value is a meaningful initial
						// value (append and nil-guard idioms), so count the
						// declaration as a definition.
						cur = b.step(cur, cfgschema.Def(sym), n)
					} else {
						// `var x T`: declared but not initialized — the
						// decl(x) label is what uninit-use anchors on.
						cur = b.step(cur, cfgschema.Decl(sym), n)
					}
				} else {
					cur = b.step(cur, cfgschema.Def(sym), n)
				}
			}
		}
	case token.CONST:
		for _, sp := range gd.Specs {
			vs, ok := sp.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				if n.Name == "_" {
					continue
				}
				cur = b.step(cur, cfgschema.Def(b.declare(n.Name)), n)
			}
		}
	}
	return cur
}

func (b *ub) assign(cur string, x *ast.AssignStmt) string {
	if c, ok := selfAppend(x); ok {
		// x = append(x, ...) grows x in place: the self-referential read
		// is bookkeeping, not a value use, so only the added elements are
		// evaluated.
		for _, a := range c.Args[1:] {
			cur = b.expr(cur, a)
		}
	} else {
		for _, r := range x.Rhs {
			cur = b.expr(cur, r)
		}
	}
	switch x.Tok {
	case token.DEFINE:
		for _, l := range x.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			// := redeclares a name already bound in the innermost scope
			// (the `x, err := ...; y, err := ...` idiom) rather than
			// shadowing it.
			sym, exists := b.scopes[len(b.scopes)-1][id.Name]
			if !exists {
				sym = b.declare(id.Name)
			}
			if sym == "_" {
				continue
			}
			cur = b.step(cur, cfgschema.Def(sym), id)
		}
	case token.ASSIGN:
		for _, l := range x.Lhs {
			cur = b.assignTo(cur, l)
		}
	default:
		// Augmented assignment (+=, -=, ...): write-only, like IncDecStmt.
		for _, l := range x.Lhs {
			cur = b.assignTo(cur, l)
		}
	}
	return cur
}

// selfAppend recognizes `x = append(x, ...)` (and the := form): one ident
// LHS, one append call RHS whose first argument is the same identifier.
func selfAppend(x *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := x.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	c, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
	if !ok || len(c.Args) == 0 {
		return nil, false
	}
	f, ok := c.Fun.(*ast.Ident)
	if !ok || f.Name != "append" {
		return nil, false
	}
	a0, ok := ast.Unparen(c.Args[0]).(*ast.Ident)
	return c, ok && a0.Name == lhs.Name
}

func (b *ub) assignTo(cur string, l ast.Expr) string {
	switch t := l.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return cur
		}
		if sym, ok := b.resolveVarOK(t.Name); ok {
			return b.step(cur, cfgschema.Def(sym), t)
		}
		return cur
	case *ast.SelectorExpr:
		if p, ok := b.pathOf(t); ok {
			cur = b.step(cur, cfgschema.Def(p), t)
			// A field write also (partially) initializes the aggregate:
			// `hr.fam = v` after `var hr hrow` counts as defining hr.
			if base, ok := baseIdent(t); ok {
				if sym, ok := b.resolveVarOK(base.Name); ok {
					cur = b.step(cur, cfgschema.Def(sym), t)
				}
			}
			return cur
		}
		return b.expr(cur, t.X)
	case *ast.IndexExpr:
		// a[i] = v reads a and i; it does not redefine a.
		cur = b.expr(cur, t.X)
		return b.expr(cur, t.Index)
	case *ast.StarExpr:
		// *p = v reads the pointer.
		return b.expr(cur, t.X)
	case *ast.ParenExpr:
		return b.assignTo(cur, t.X)
	}
	return cur
}

func (b *ub) ifStmt(cur string, x *ast.IfStmt) string {
	b.pushScope()
	cur = b.stmt(cur, x.Init)
	cur = b.expr(cur, x.Cond)
	thenEnd := b.stmt(cur, x.Body)
	elseEnd := cur
	if x.Else != nil {
		elseEnd = b.stmt(cur, x.Else)
	}
	join := b.fresh()
	b.edge(thenEnd, nop(), join)
	b.edge(elseEnd, nop(), join)
	b.popScope()
	return join
}

func (b *ub) forStmt(cur string, x *ast.ForStmt, lbl string) string {
	fn := b.fn()
	b.pushScope()
	cur = b.stmt(cur, x.Init)
	head := b.step(cur, nop(), nil)
	cond := head
	if x.Cond != nil {
		cond = b.expr(head, x.Cond)
	}
	brk, cont := b.fresh(), b.fresh()
	fn.loops = append(fn.loops, loopCtx{brk: brk, cont: cont, label: lbl})
	bodyEnd := b.stmt(cond, x.Body)
	fn.loops = fn.loops[:len(fn.loops)-1]
	b.edge(bodyEnd, nop(), cont)
	postEnd := b.stmt(cont, x.Post)
	b.edge(postEnd, nop(), head)
	if x.Cond != nil {
		b.edge(cond, nop(), brk)
	}
	b.popScope()
	return brk
}

func (b *ub) rangeStmt(cur string, x *ast.RangeStmt, lbl string) string {
	fn := b.fn()
	b.pushScope()
	cur = b.expr(cur, x.X)
	head := b.step(cur, nop(), nil)
	iter := head
	bindRange := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			if p, ok := b.pathOf(e); ok && x.Tok == token.ASSIGN {
				iter = b.step(iter, cfgschema.Def(p), e)
			}
			return
		}
		var sym string
		if x.Tok == token.DEFINE {
			sym = b.declare(id.Name)
		} else if s, ok := b.resolveVarOK(id.Name); ok {
			sym = s
		} else {
			return
		}
		iter = b.step(iter, cfgschema.Def(sym), id)
	}
	if x.Key != nil {
		bindRange(x.Key)
	}
	if x.Value != nil {
		bindRange(x.Value)
	}
	brk, cont := b.fresh(), b.fresh()
	fn.loops = append(fn.loops, loopCtx{brk: brk, cont: cont, label: lbl})
	bodyEnd := b.stmt(iter, x.Body)
	fn.loops = fn.loops[:len(fn.loops)-1]
	b.edge(bodyEnd, nop(), cont)
	b.edge(cont, nop(), head)
	b.edge(head, nop(), brk) // empty range / iteration complete
	b.popScope()
	return brk
}

func (b *ub) switchStmt(cur string, x *ast.SwitchStmt, lbl string) string {
	fn := b.fn()
	b.pushScope()
	cur = b.stmt(cur, x.Init)
	if x.Tag != nil {
		cur = b.expr(cur, x.Tag)
	}
	join := b.fresh()
	clauses := clauseList(x.Body)
	starts := make([]string, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		starts[i] = b.fresh()
		b.edge(cur, nop(), starts[i])
		if len(cc.List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(cur, nop(), join)
	}
	fn.loops = append(fn.loops, loopCtx{brk: join, label: lbl})
	for i, cc := range clauses {
		b.pushScope()
		c := starts[i]
		for _, e := range cc.List {
			c = b.expr(c, e)
		}
		prevFall := fn.fallNext
		if i+1 < len(clauses) {
			fn.fallNext = starts[i+1]
		} else {
			fn.fallNext = ""
		}
		end := b.stmts(c, cc.Body)
		fn.fallNext = prevFall
		b.edge(end, nop(), join)
		b.popScope()
	}
	fn.loops = fn.loops[:len(fn.loops)-1]
	b.popScope()
	return join
}

func (b *ub) typeSwitchStmt(cur string, x *ast.TypeSwitchStmt, lbl string) string {
	fn := b.fn()
	b.pushScope()
	cur = b.stmt(cur, x.Init)
	bind := ""
	switch a := x.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			cur = b.expr(cur, ta.X)
		}
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				cur = b.expr(cur, ta.X)
			}
		}
		if len(a.Lhs) == 1 {
			if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				bind = id.Name
			}
		}
	}
	join := b.fresh()
	clauses := clauseList(x.Body)
	hasDefault := false
	fn.loops = append(fn.loops, loopCtx{brk: join, label: lbl})
	for _, cc := range clauses {
		if len(cc.List) == 0 {
			hasDefault = true
		}
		b.pushScope()
		c := b.step(cur, nop(), nil)
		if bind != "" {
			// Each clause binds its own typed copy of the switch variable.
			c = b.step(c, cfgschema.Def(b.declare(bind)), x.Assign)
		}
		end := b.stmts(c, cc.Body)
		b.edge(end, nop(), join)
		b.popScope()
	}
	fn.loops = fn.loops[:len(fn.loops)-1]
	if !hasDefault {
		b.edge(cur, nop(), join)
	}
	b.popScope()
	return join
}

func (b *ub) selectStmt(cur string, x *ast.SelectStmt, lbl string) string {
	fn := b.fn()
	join := b.fresh()
	fn.loops = append(fn.loops, loopCtx{brk: join, label: lbl})
	for _, s := range x.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		b.pushScope()
		c := b.step(cur, nop(), nil)
		c = b.stmt(c, cc.Comm)
		end := b.stmts(c, cc.Body)
		b.edge(end, nop(), join)
		b.popScope()
	}
	fn.loops = fn.loops[:len(fn.loops)-1]
	if len(x.Body.List) == 0 {
		b.edge(cur, nop(), join)
	}
	return join
}

func clauseList(body *ast.BlockStmt) []*ast.CaseClause {
	out := make([]*ast.CaseClause, 0, len(body.List))
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

// ---- defer / go ----

// emitDefers re-emits the first n registered defers in LIFO order. Each
// return statement emits the defers registered *before it in the walk*, so
// an early return does not run a defer registered further down — that is
// exactly the unlock-without-lock shape the checks must not invent.
func (b *ub) emitDefers(cur string, n int) string {
	fn := b.fn()
	for i := n - 1; i >= 0; i-- {
		op := fn.deferred[i]
		prev := cur
		cur = b.step(cur, op.eff, op.node)
		if b.cfg.Interproc && op.callee != "" {
			b.res.links = append(b.res.links, link{kind: linkCall, from: prev, resume: cur, callee: op.callee})
		}
	}
	return cur
}

func (b *ub) deferStmt(cur string, x *ast.DeferStmt) string {
	fn := b.fn()
	cur, eff, callee := b.callEffect(cur, x.Call)
	if eff == nil {
		// Deferring a fully-absorbed builtin (defer println(...)) — the
		// registration still marks the site.
		eff = nop()
	}
	fn.deferSite++
	site := fn.qname + ".d" + strconv.Itoa(fn.deferSite)
	desc := callee
	if desc == "" {
		desc = effectDesc(eff)
	}
	cur = b.step(cur, cfgschema.DeferAt(desc, site), x)
	fn.deferred = append(fn.deferred, deferOp{eff: eff, callee: callee, node: x})
	return cur
}

func (b *ub) goStmt(cur string, x *ast.GoStmt) string {
	prev := cur
	cur, eff, callee := b.callEffect(cur, x.Call)
	desc := callee
	if desc == "" {
		if eff == nil {
			eff = nop()
		}
		desc = effectDesc(eff)
	}
	cur = b.step(cur, cfgschema.Go(desc), x)
	if b.cfg.Interproc && callee != "" {
		b.res.links = append(b.res.links, link{kind: linkGo, from: prev, callee: callee})
	}
	return cur
}

// effectDesc names a deferred/launched operation for the defer(f,s) and
// go(f) labels when the callee is not a known function: close:pkg.f.x,
// mcall:pkg.f.x.Done, call:cancel.
func effectDesc(eff *label.Term) string {
	d := eff.Name
	for _, a := range eff.Args {
		d += ":" + a.Name
	}
	return d
}

// ---- expressions ----

func (b *ub) expr(cur string, e ast.Expr) string {
	switch x := e.(type) {
	case nil:
		return cur
	case *ast.Ident:
		if sym, ok := b.resolveVarOK(x.Name); ok {
			return b.step(cur, cfgschema.Use(sym), x)
		}
		return cur
	case *ast.BasicLit, *ast.Ellipsis:
		return cur
	case *ast.ParenExpr:
		return b.expr(cur, x.X)
	case *ast.SelectorExpr:
		if p, ok := b.pathOf(x); ok {
			return b.step(cur, cfgschema.Use(p), x)
		}
		// Package selector (os.Stdout) or chained expression (f().field).
		if _, isImport := b.importOf(x.X); isImport {
			return cur
		}
		return b.expr(cur, x.X)
	case *ast.StarExpr:
		return b.expr(cur, x.X)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			// &x escapes x; without alias tracking the only safe reading is
			// that x may be initialized through the pointer.
			if p, ok := b.pathOf(x.X); ok {
				return b.step(cur, cfgschema.Def(p), x)
			}
			return b.expr(cur, x.X)
		case token.ARROW:
			if p, ok := b.pathOf(x.X); ok {
				cur = b.step(cur, cfgschema.Use(p), x.X)
				return b.step(cur, cfgschema.Recv(p), x)
			}
			return b.expr(cur, x.X)
		default:
			return b.expr(cur, x.X)
		}
	case *ast.BinaryExpr:
		cur = b.expr(cur, x.X)
		return b.expr(cur, x.Y)
	case *ast.CallExpr:
		cur, eff, callee := b.callEffect(cur, x)
		if eff == nil {
			return cur
		}
		prev := cur
		cur = b.step(cur, eff, x)
		if b.cfg.Interproc && callee != "" && eff.Name == "call" {
			b.res.links = append(b.res.links, link{kind: linkCall, from: prev, resume: cur, callee: callee})
		}
		return cur
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			cur = b.expr(cur, el)
		}
		return cur
	case *ast.KeyValueExpr:
		// Struct-literal keys are field names, not variable reads.
		if _, isIdent := x.Key.(*ast.Ident); !isIdent {
			cur = b.expr(cur, x.Key)
		}
		return b.expr(cur, x.Value)
	case *ast.IndexExpr:
		cur = b.expr(cur, x.X)
		return b.expr(cur, x.Index)
	case *ast.IndexListExpr:
		return b.expr(cur, x.X)
	case *ast.SliceExpr:
		cur = b.expr(cur, x.X)
		cur = b.expr(cur, x.Low)
		cur = b.expr(cur, x.High)
		return b.expr(cur, x.Max)
	case *ast.TypeAssertExpr:
		return b.expr(cur, x.X)
	case *ast.FuncLit:
		b.buildLiteral(x)
		return cur
	}
	return cur
}

// buildLiteral lowers a function literal as a sibling function named
// parent.funcN. It is linked from the synthetic root like every function;
// when the literal is directly called, launched, or deferred, the caller
// also gets an interprocedural link to it.
func (b *ub) buildLiteral(x *ast.FuncLit) string {
	fn := b.fn()
	fn.literals++
	qname := fn.qname + ".func" + strconv.Itoa(fn.literals)
	b.buildFunc(qname, nil, x.Type, x.Body, x)
	return qname
}

// importOf reports whether an expression is a bare import-package name.
func (b *ub) importOf(e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, shadowed := b.resolveVar(id.Name); shadowed {
		return "", false
	}
	p, ok := b.file.imports[id.Name]
	return p, ok
}

// callEffect evaluates a call's arguments and receiver and classifies the
// call into its effect label. It returns the new current vertex, the
// effect term (nil when the call is fully absorbed, e.g. len()), and the
// qualified callee candidate for interprocedural linking ("" if unknown).
// The caller decides whether to emit the effect as a plain step (normal
// call), re-emit it later (defer), or pair it with a go label.
func (b *ub) callEffect(cur string, call *ast.CallExpr) (string, *label.Term, string) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) — classify the underlying callee.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if _, ok := b.pathOf(ix.X); !ok {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	evalArgs := func(c string) string {
		for _, a := range call.Args {
			c = b.expr(c, a)
		}
		return c
	}

	switch f := fun.(type) {
	case *ast.FuncLit:
		qname := b.buildLiteral(f)
		cur = evalArgs(cur)
		return cur, cfgschema.Call(qname), qname

	case *ast.Ident:
		if _, isVar := b.resolveVarOK(f.Name); isVar {
			// Calling a local function value: read it, then call it.
			sym, _ := b.resolveVarOK(f.Name)
			cur = b.step(cur, cfgschema.Use(sym), f)
			cur = evalArgs(cur)
			return cur, cfgschema.Call(sym), ""
		}
		switch f.Name {
		case "close":
			if len(call.Args) == 1 {
				if p, ok := b.pathOf(call.Args[0]); ok {
					return cur, cfgschema.Close(p), ""
				}
			}
			return evalArgs(cur), nil, ""
		case "panic":
			// panic unwinds through the registered defers and leaves the
			// function.
			cur = evalArgs(cur)
			cur = b.step(cur, cfgschema.Call("panic"), call)
			cur = b.emitDefers(cur, len(b.fn().deferred))
			b.edge(cur, nop(), b.fn().retJoin)
			return b.fresh(), nil, ""
		}
		if builtinFuncs[f.Name] {
			if (f.Name == "len" || f.Name == "cap") && len(call.Args) == 1 {
				if _, ok := b.pathOf(ast.Unparen(call.Args[0])); ok {
					// len/cap read only the descriptor and are safe on zero
					// values of every type they accept, so they do not count
					// as value uses.
					return cur, nil, ""
				}
			}
			return evalArgs(cur), nil, ""
		}
		if qname, ok := b.pkg.funcs[f.Name]; ok {
			cur = evalArgs(cur)
			return cur, cfgschema.Call(qname), qname
		}
		// Unknown identifier (dot import, predeclared conversion, ...).
		cur = evalArgs(cur)
		return cur, cfgschema.Call(f.Name), ""

	case *ast.SelectorExpr:
		if impPath, ok := b.importOf(f.X); ok {
			qn := impPath + "." + f.Sel.Name
			cur = evalArgs(cur)
			if qn == "os.Exit" || qn == "runtime.Goexit" {
				// No fallthrough: control does not continue past these.
				c := b.step(cur, cfgschema.Call(qn), call)
				if qn == "runtime.Goexit" {
					c = b.emitDefers(c, len(b.fn().deferred))
				}
				b.edge(c, nop(), b.fn().retJoin)
				return b.fresh(), nil, ""
			}
			return cur, cfgschema.Call(qn), qn
		}
		if p, ok := b.pathOf(f.X); ok {
			// Method call on a resolvable receiver path.
			cur = evalArgs(cur)
			if len(call.Args) == 0 {
				switch f.Sel.Name {
				case "Close":
					return cur, cfgschema.Close(p), ""
				case "Lock":
					return cur, cfgschema.Lock(p), ""
				case "Unlock":
					return cur, cfgschema.Unlock(p), ""
				case "RLock":
					return cur, cfgschema.RLock(p), ""
				case "RUnlock":
					return cur, cfgschema.RUnlock(p), ""
				}
			}
			return cur, cfgschema.MCall(p, f.Sel.Name), ""
		}
		// Chained call (f().g(...)) or method value on a complex base:
		// evaluate the base for its effects, then an unlinked call.
		cur = b.expr(cur, f.X)
		cur = evalArgs(cur)
		return cur, cfgschema.Call(f.Sel.Name), ""
	}

	// Conversions (T(x), []byte(s)) and anything else: effects of operands.
	cur = b.expr(cur, fun)
	cur = evalArgs(cur)
	return cur, nil, ""
}
