// Package gofront parses real Go packages — stdlib go/parser and go/ast
// only, no go/types — and lowers every function body to a control-flow
// graph expressed as an rpq program graph, so the paper's parametric
// dataflow queries (uninitialized use, use-after-close, lock discipline,
// defer-in-loop) run on actual Go code.
//
// # Label schema
//
// Emitted labels follow the shared internal/cfgschema vocabulary:
//
//	entry(f) / exit(f)   function entry (edge from the synthetic root) and exit
//	def(x), decl(x)      assignment to x; declaration of x without initializer
//	use(x)               read of x (plain identifiers and selector paths)
//	call(f), ret(f)      function call; interprocedural return edge
//	mcall(x, M)          method call M on receiver path x
//	close(x)             close(ch) builtin and x.Close()
//	lock/unlock(m)       x.Lock()/x.Unlock(); rlock/runlock for the R variants
//	send(x), recv(x)     channel operations
//	defer(f, s)          defer registration of f at unique site s
//	go(f)                goroutine launch
//	nop                  control flow only
//
// Symbols are qualified by package path and function — the variable n in
// function Sum of package example.com/m/util is example.com/m/util.Sum.n —
// with #2, #3... suffixes distinguishing shadowing redeclarations, so one
// query parameter never conflates distinct variables across the module.
//
// # Approximations
//
// Without go/types, identity is syntactic: a selector path x.f.mu names a
// resource by its spelling, pointer aliasing is invisible, interface and
// cross-package method calls are not linked to their targets, and address
// taking (&x) is treated as a definition. Findings derived from these
// graphs are therefore *possible* answers in the sense of Barceló et al.'s
// parameterized-language semantics — every report names a path that exists
// in the CFG, but the resource identity along it is approximate. docs/
// gofront.md documents every lowering rule and approximation.
//
// # Construction
//
// Per-function CFGs build independently — they share no state — so Load
// fans them out across Config.Workers goroutines and then merges the
// results into one graph sequentially, in sorted function order, keeping
// the merged graph (vertex numbering, label interning) byte-identical
// across worker counts.
package gofront

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"rpq/internal/cfgschema"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/span"
)

// Config controls parsing and lowering.
type Config struct {
	// Interproc links call sites to callee entries/exits with call/ret
	// edges (and go edges to goroutine entries) when the callee is a
	// top-level function or closure of an analyzed package.
	Interproc bool
	// IncludeTests also loads _test.go files.
	IncludeTests bool
	// Workers bounds the parallel per-function CFG builds; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// Location is a resolved source position for one graph vertex: the file,
// 1-based line and column, and the byte-offset span of the operation that
// produced it.
type Location struct {
	File string    `json:"file"`
	Line int       `json:"line"`
	Col  int       `json:"col"`
	Span span.Span `json:"span"`
}

func (l Location) String() string {
	return fmt.Sprintf("%s:%d:%d", l.File, l.Line, l.Col)
}

// FuncInfo describes one lowered function (or function literal).
type FuncInfo struct {
	// Name is the fully qualified function name: pkgpath.Func,
	// pkgpath.Type.Method, or pkgpath.Func.func1 for literals.
	Name string
	// Package is the package path the function belongs to.
	Package string
	// Entry and Exit are the function's entry and exit vertex names.
	Entry string
	Exit  string
	// Loc is the function's declaration site.
	Loc Location
}

// Program is the lowered form of a set of Go packages: one merged program
// graph plus the source-position and suppression side tables the checks
// report through.
type Program struct {
	// Graph is the merged program graph. Its start vertex is Root, a
	// synthetic vertex with an entry(f) edge to every function's entry, so
	// one query reaches every function body.
	Graph *graph.Graph
	// Root is the synthetic start vertex's name.
	Root string
	// Funcs lists every lowered function in deterministic order.
	Funcs []FuncInfo
	// Config echoes the configuration the program was built with.
	Config Config

	pos    map[string]Location
	files  map[string]string
	allows map[string]map[int][]string
	funcIx map[string]int
}

// Location reports the source location recorded for a vertex, if the
// vertex corresponds to a source operation.
func (p *Program) Location(vertex string) (Location, bool) {
	l, ok := p.pos[vertex]
	return l, ok
}

// Source returns the loaded source text of file.
func (p *Program) Source(file string) (string, bool) {
	s, ok := p.files[file]
	return s, ok
}

// Func finds a lowered function by qualified name.
func (p *Program) Func(name string) (FuncInfo, bool) {
	if i, ok := p.funcIx[name]; ok {
		return p.Funcs[i], true
	}
	return FuncInfo{}, false
}

// Allowed reports whether an //rpqcheck:allow comment on the finding's
// line, or on the line above it, suppresses the named check in file.
func (p *Program) Allowed(file string, line int, check string) bool {
	byLine, ok := p.allows[file]
	if !ok {
		return false
	}
	for _, ln := range [2]int{line, line - 1} {
		names, ok := byLine[ln]
		if !ok {
			continue
		}
		if len(names) == 0 {
			return true // bare //rpqcheck:allow suppresses every check
		}
		for _, n := range names {
			if n == check || n == "all" {
				return true
			}
		}
	}
	return false
}

// DebugDump renders the merged graph as deterministic text — one edge per
// line in vertex-id order — for golden tests and debugging.
func (p *Program) DebugDump() string {
	g := p.Graph
	var b strings.Builder
	fmt.Fprintf(&b, "start %s\n", g.VertexName(g.Start()))
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, e := range g.Out(v) {
			fmt.Fprintf(&b, "%s -%s-> %s\n",
				g.VertexName(v), fmtLabel(e.Label, g), g.VertexName(e.To))
		}
	}
	return b.String()
}

// fmtLabel renders a ground edge label without symbol quoting — qualified
// symbols contain dots on every edge, so the quoted form would drown the
// goldens in noise.
func fmtLabel(c *label.CTerm, g *graph.Graph) string {
	switch c.Kind {
	case label.KApp:
		var b strings.Builder
		b.WriteString(g.U.Ctors.Name(c.Ctor))
		b.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(fmtLabel(a, g))
		}
		b.WriteByte(')')
		return b.String()
	case label.KSym:
		return g.U.Syms.Name(c.Sym)
	}
	return c.String()
}

// Load parses the packages named by patterns and lowers them to a Program.
// Each pattern is a directory, a directory with a /... suffix (recursive,
// skipping testdata, vendor, and hidden/underscore directories), or a
// single .go file.
func Load(patterns []string, cfg Config) (*Program, error) {
	files, err := discover(patterns, cfg)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("gofront: no Go files match %v", patterns)
	}
	srcs := make(map[string]string, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		srcs[filepath.ToSlash(f)] = string(data)
	}
	return build(srcs, cfg, modulePathFor)
}

// LoadSource lowers in-memory sources (file name → content). Names may
// carry directory components; each directory is one package. A go.mod at
// the root supplies the module path for package qualification.
func LoadSource(files map[string]string, cfg Config) (*Program, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("gofront: no source files")
	}
	mod := ""
	for name, src := range files {
		if path.Base(name) == "go.mod" && path.Dir(name) == "." {
			mod = moduleLine(src)
		}
	}
	return build(files, cfg, func(dir string) (string, string) { return mod, "" })
}

// SplitSource splits a txtar-style body ("-- name --" separators) into a
// file map; a body with no separators becomes a single main.go.
func SplitSource(body string) map[string]string {
	const marker = "-- "
	if !strings.HasPrefix(body, marker) && !strings.Contains(body, "\n"+marker) {
		return map[string]string{"main.go": body}
	}
	files := map[string]string{}
	var name string
	var buf strings.Builder
	flush := func() {
		if name != "" {
			files[name] = buf.String()
		}
		buf.Reset()
	}
	for _, line := range strings.SplitAfter(body, "\n") {
		trimmed := strings.TrimRight(line, "\n")
		if strings.HasPrefix(trimmed, marker) && strings.HasSuffix(trimmed, " --") {
			flush()
			name = strings.TrimSpace(trimmed[len(marker) : len(trimmed)-len(" --")])
			continue
		}
		if name != "" { //rpqcheck:allow uninit-use — "" means before the first marker
			buf.WriteString(line)
		}
	}
	flush()
	if len(files) == 0 {
		return map[string]string{"main.go": body}
	}
	return files
}

// ---- discovery ----

// skipDir reports whether a walk should descend into a directory entry.
// Mirrors the go tool: testdata, vendor, and dot/underscore names are not
// part of a package pattern.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func discover(patterns []string, cfg Config) ([]string, error) {
	var dirs []string
	var files []string
	seenDir := map[string]bool{}
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seenDir[d] {
			seenDir[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		switch {
		case strings.HasSuffix(p, "/...") || p == "...":
			root := strings.TrimSuffix(p, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(pth string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if pth != root && skipDir(d.Name()) {
					return filepath.SkipDir
				}
				addDir(pth)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("gofront: %w", err)
			}
		case strings.HasSuffix(p, ".go"):
			files = append(files, p)
		default:
			fi, err := os.Stat(p)
			if err != nil {
				return nil, fmt.Errorf("gofront: %w", err)
			}
			if !fi.IsDir() {
				return nil, fmt.Errorf("gofront: %s is not a directory or .go file", p)
			}
			addDir(p)
		}
	}
	for _, d := range dirs {
		ents, err := os.ReadDir(d)
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") {
				continue
			}
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			if !cfg.IncludeTests && strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(d, name))
		}
	}
	sort.Strings(files)
	return files, nil
}

// modulePathFor walks up from dir looking for a go.mod; it returns the
// module path and the module root directory ("" if none).
func modulePathFor(dir string) (string, string) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			if m := moduleLine(string(data)); m != "" {
				return m, d
			}
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

func moduleLine(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// ---- parsing and package grouping ----

type parsedFile struct {
	name    string // file path as loaded (map key / cleaned fs path)
	src     string
	ast     *ast.File
	imports map[string]string // local name -> import path
}

type pkgUnit struct {
	path    string // derived package path used to qualify symbols
	files   []*parsedFile
	globals map[string]bool   // package-level var/const names
	funcs   map[string]string // top-level func name -> qualified name
}

// unitJob is one function body scheduled for CFG construction.
type unitJob struct {
	pkg   *pkgUnit
	file  *parsedFile
	decl  *ast.FuncDecl
	qname string
}

func build(srcs map[string]string, cfg Config, modOf func(dir string) (string, string)) (*Program, error) {
	fset := token.NewFileSet()
	names := make([]string, 0, len(srcs))
	for n := range srcs {
		names = append(names, n)
	}
	sort.Strings(names)

	// Group parsed files into packages by (directory, package name).
	type key struct{ dir, pkg string }
	units := map[key]*pkgUnit{}
	var order []key
	allows := map[string]map[int][]string{}
	for _, name := range names {
		if path.Base(name) == "go.mod" {
			continue
		}
		f, err := parser.ParseFile(fset, name, srcs[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		pf := &parsedFile{name: name, src: srcs[name], ast: f, imports: importMap(f)}
		collectAllows(fset, f, name, allows)
		k := key{path.Dir(filepath.ToSlash(name)), f.Name.Name}
		u := units[k]
		if u == nil {
			u = &pkgUnit{
				path:    derivePkgPath(k.dir, f.Name.Name, modOf),
				globals: map[string]bool{},
				funcs:   map[string]string{},
			}
			units[k] = u
			order = append(order, k)
		}
		u.files = append(u.files, pf)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].dir != order[j].dir {
			return order[i].dir < order[j].dir
		}
		return order[i].pkg < order[j].pkg
	})

	// Package-scope pre-pass: globals and top-level function names must be
	// known before any body builds (files in one package see each other).
	var jobs []*unitJob
	for _, k := range order {
		u := units[k]
		for _, pf := range u.files {
			for _, d := range pf.ast.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || (gd.Tok != token.VAR && gd.Tok != token.CONST) {
					continue
				}
				for _, sp := range gd.Specs {
					vs, ok := sp.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, n := range vs.Names {
						if n.Name != "_" {
							u.globals[n.Name] = true
						}
					}
				}
			}
		}
		for _, pf := range u.files {
			for _, d := range pf.ast.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				qname := u.path + "." + funcBaseName(fd)
				// Build-tag variants of one function parse as duplicates
				// without tag evaluation; keep both, disambiguated, with the
				// first (in sorted file order) owning the plain name.
				if _, taken := u.funcs[funcBaseName(fd)]; taken {
					n := 2
					for {
						cand := fmt.Sprintf("%s~%d", qname, n)
						if !qnameTaken(jobs, cand) {
							qname = cand
							break
						}
						n++
					}
				} else {
					u.funcs[funcBaseName(fd)] = qname
				}
				jobs = append(jobs, &unitJob{pkg: u, file: pf, decl: fd, qname: qname})
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("gofront: no function bodies in %d file(s)", len(names))
	}

	// Fan the independent per-function builds across the worker pool.
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*unitResult, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = buildUnit(fset, jobs[i], cfg)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}

	return mergeUnits(results, srcs, allows, cfg)
}

func qnameTaken(jobs []*unitJob, q string) bool {
	for _, j := range jobs {
		if j.qname == q {
			return true
		}
	}
	return false
}

func funcBaseName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName extracts the receiver's base type name, stripping pointers
// and type parameters.
func recvTypeName(t ast.Expr) string {
	switch x := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.IndexExpr:
		return recvTypeName(x.X)
	case *ast.IndexListExpr:
		return recvTypeName(x.X)
	case *ast.Ident:
		return x.Name
	}
	return "recv"
}

func importMap(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		name := path.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		m[name] = p
	}
	return m
}

func derivePkgPath(dir, pkgName string, modOf func(dir string) (string, string)) string {
	mod, root := modOf(dir)
	p := ""
	switch {
	case mod != "" && root != "":
		abs, err := filepath.Abs(dir)
		if err == nil {
			if rel, err := filepath.Rel(root, abs); err == nil {
				if rel == "." {
					p = mod
				} else {
					p = mod + "/" + filepath.ToSlash(rel)
				}
			}
		}
	case mod != "":
		if dir == "." {
			p = mod
		} else {
			p = mod + "/" + path.Clean(filepath.ToSlash(dir))
		}
	}
	if p == "" {
		if dir == "." || dir == "" {
			p = pkgName
		} else {
			p = path.Clean(filepath.ToSlash(dir))
		}
	}
	// An external test package (package foo_test) shares its directory with
	// package foo; keep their symbol namespaces apart.
	if strings.HasSuffix(pkgName, "_test") && !strings.HasSuffix(p, "_test") {
		p += "_test"
	}
	return p
}

func collectAllows(fset *token.FileSet, f *ast.File, file string, allows map[string]map[int][]string) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "rpqcheck:allow")
			if !ok {
				continue
			}
			line := fset.Position(c.Slash).Line
			byLine := allows[file]
			if byLine == nil {
				byLine = map[int][]string{}
				allows[file] = byLine
			}
			// Trailing prose after an em- or double-dash is commentary, not
			// check names: //rpqcheck:allow uninit-use — zero value intended
			if i := strings.IndexAny(rest, "—"); i >= 0 {
				rest = rest[:i]
			}
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = rest[:i]
			}
			names := strings.Fields(rest)
			if existing, seen := byLine[line]; seen {
				names = append(existing, names...)
			}
			byLine[line] = names
		}
	}
}

// ---- merge ----

// mergeUnits assembles the per-function results into one graph. This is
// the only sequential stage: vertex ids and interned label ids depend on
// insertion order, so the merged graph is deterministic exactly because
// units arrive in sorted-job order regardless of which worker built them.
func mergeUnits(results []*unitResult, srcs map[string]string, allows map[string]map[int][]string, cfg Config) (*Program, error) {
	g := graph.New()
	const root = "root"
	rv := g.Vertex(root)
	g.SetStart(rv)

	p := &Program{
		Graph:  g,
		Root:   root,
		Config: cfg,
		pos:    map[string]Location{},
		files:  srcs,
		allows: allows,
		funcIx: map[string]int{},
	}
	for _, r := range results {
		for _, fi := range r.funcs {
			if _, dup := p.funcIx[fi.Name]; dup {
				return nil, fmt.Errorf("gofront: duplicate function %s", fi.Name)
			}
			p.funcIx[fi.Name] = len(p.Funcs)
			p.Funcs = append(p.Funcs, fi)
			if err := g.AddEdge(rv, cfgschema.EntryOf(fi.Name), g.Vertex(fi.Entry)); err != nil {
				return nil, fmt.Errorf("gofront: %w", err)
			}
			p.pos[fi.Entry] = fi.Loc
		}
		for _, e := range r.edges {
			if err := g.AddEdge(g.Vertex(e.from), e.t, g.Vertex(e.to)); err != nil {
				return nil, fmt.Errorf("gofront: %w", err)
			}
		}
		for v, l := range r.pos {
			p.pos[v] = l
		}
	}
	if cfg.Interproc {
		for _, r := range results {
			for _, lk := range r.links {
				i, ok := p.funcIx[lk.callee]
				if !ok {
					continue
				}
				fi := p.Funcs[i]
				var err error
				switch lk.kind {
				case linkCall:
					err = g.AddEdge(g.Vertex(lk.from), cfgschema.Call(lk.callee), g.Vertex(fi.Entry))
					if err == nil {
						err = g.AddEdge(g.Vertex(fi.Exit), cfgschema.Ret(lk.callee), g.Vertex(lk.resume))
					}
				case linkGo:
					err = g.AddEdge(g.Vertex(lk.from), cfgschema.Go(lk.callee), g.Vertex(fi.Entry))
				}
				if err != nil {
					return nil, fmt.Errorf("gofront: %w", err)
				}
			}
		}
	}
	return p, nil
}
