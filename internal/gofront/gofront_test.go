package gofront

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const fixtures = "../../testdata/goprog"

func load(t *testing.T, dir string, cfg Config) *Program {
	t.Helper()
	p, err := Load([]string{filepath.Join(fixtures, dir)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShapesGolden pins the exact lowering of every statement form against
// a committed dump. Regenerate with UPDATE_GOLDEN=1.
func TestShapesGolden(t *testing.T) {
	p := load(t, "shapes", Config{})
	got := p.DebugDump()
	golden := filepath.Join("testdata", "shapes.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("shapes dump mismatch (regen with UPDATE_GOLDEN=1)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDeterministicAcrossWorkers asserts byte-identical graphs for every
// worker count: the merge order is the contract, not the scheduling.
func TestDeterministicAcrossWorkers(t *testing.T) {
	dirs := []string{filepath.Join(fixtures, "benchmod") + "/..."}
	base, err := Load(dirs, Config{Interproc: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := base.DebugDump()
	for _, w := range []int{2, 3, 8} {
		p, err := Load(dirs, Config{Interproc: true, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.DebugDump(); got != want {
			t.Errorf("workers=%d produced a different graph (len %d vs %d)", w, len(got), len(want))
		}
	}
}

// TestParallelLoadRace drives concurrent Loads to let -race inspect the
// worker fan-out.
func TestParallelLoadRace(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := Load([]string{filepath.Join(fixtures, "benchmod") + "/..."},
				Config{Interproc: true, Workers: 4})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func TestInterprocLinks(t *testing.T) {
	p, err := Load([]string{filepath.Join(fixtures, "benchmod") + "/..."},
		Config{Interproc: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dump := p.DebugDump()
	for _, want := range []string{
		// main calls across packages; call edge enters the callee's entry.
		"-call(benchmod/store.New)-> benchmod/store.New.entry",
		"-ret(benchmod/store.New)->",
		// goroutine launch links entry-only.
		"-go(benchmod.produce)-> benchmod.produce.entry",
		// the pipeline worker closure is reachable from its go statement.
		"-go(benchmod/pipeline.Run.func1)-> benchmod/pipeline.Run.func1.entry",
		// deferred s.Close() at main's exit is a close effect on s.
		"close(benchmod.main.s)",
		// every function hangs off the synthetic root.
		"root -entry(benchmod/pipeline.weight)->",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("interproc dump missing %q", want)
		}
	}
	if _, ok := p.Func("benchmod/store.Store.Put"); !ok {
		t.Errorf("method Put not registered")
	}
}

func TestPositions(t *testing.T) {
	p := load(t, "uninit", Config{})
	// The fixture sits inside this repository's module, so the module path
	// qualifies the package.
	fi, ok := p.Func("rpq/testdata/goprog/uninit.Report")
	if !ok {
		t.Fatalf("Report not found; funcs: %v", names(p))
	}
	loc, ok := p.Location(fi.Entry)
	if !ok {
		t.Fatal("no location for Report entry")
	}
	if filepath.Base(loc.File) != "uninit.go" || loc.Line != 9 {
		t.Errorf("Report entry at %s, want uninit.go:9 (the declaration name)", loc)
	}
	src, ok := p.Source(loc.File)
	if !ok || !strings.Contains(src, "package uninit") {
		t.Errorf("source for %s not retained", loc.File)
	}
}

func names(p *Program) []string {
	var out []string
	for _, f := range p.Funcs {
		out = append(out, f.Name)
	}
	return out
}

func TestAllows(t *testing.T) {
	p := load(t, "uninit", Config{})
	file := ""
	for f := range p.files {
		file = f
	}
	// The //rpqcheck:allow uninit-use sits on the `return n` line of
	// Allowed (line 43).
	if !p.Allowed(file, 43, "uninit-use") {
		t.Errorf("line 43 should allow uninit-use")
	}
	if p.Allowed(file, 43, "double-lock") {
		t.Errorf("line 43 must not allow double-lock")
	}
	if p.Allowed(file, 10, "uninit-use") {
		t.Errorf("line 10 has no allow comment")
	}
}

// TestLoadSource covers the in-memory path used by the service loader,
// including txtar splitting and module-path qualification.
func TestLoadSource(t *testing.T) {
	body := `-- go.mod --
module demo

-- a.go --
package main

func main() {
	helper()
}

-- util/u.go --
package util

func Twice(x int) int { return x + x }
-- b.go --
package main

func helper() {}
`
	files := SplitSource(body)
	if len(files) != 4 {
		t.Fatalf("SplitSource found %d files, want 4", len(files))
	}
	p, err := LoadSource(files, Config{Interproc: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Func("demo.main"); !ok {
		t.Errorf("demo.main missing; funcs: %v", names(p))
	}
	if _, ok := p.Func("demo/util.Twice"); !ok {
		t.Errorf("demo/util.Twice missing; funcs: %v", names(p))
	}
	if !strings.Contains(p.DebugDump(), "-call(demo.helper)-> demo.helper.entry") {
		t.Errorf("intra-package call not linked")
	}

	single := SplitSource("package solo\n\nfunc F() {}\n")
	if len(single) != 1 || single["main.go"] == "" {
		t.Fatalf("plain body should become main.go, got %v", single)
	}
	p2, err := LoadSource(single, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.Func("solo.F"); !ok {
		t.Errorf("solo.F missing; funcs: %v", names(p2))
	}
}

// TestEdgeCaseLowering spot-checks tricky statement forms straight from
// source snippets.
func TestEdgeCaseLowering(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "shadowing gets distinct symbols",
			src: `package p
func F() int {
	x := 1
	{
		x := 2
		_ = x
	}
	return x
}`,
			want: []string{"def(p.F.x)", "def(p.F.x#2)", "use(p.F.x#2)", "use(p.F.x)"},
		},
		{
			name: "redeclaration via := reuses the symbol",
			src: `package p
func F() (int, int) {
	a, err := G()
	b, err := G()
	_ = err
	return a, b
}
func G() (int, int) { return 0, 0 }`,
			want: []string{"def(p.F.err)"},
		},
		{
			name: "method value receiver is a use",
			src: `package p
type T struct{}
func (t T) M() {}
func F(t T) {
	f := t.M
	f()
}`,
			want: []string{"use(p.F.t.M)", "def(p.F.f)", "call(p.F.f)"},
		},
		{
			name: "closure captures enclosing variable",
			src: `package p
func F() {
	n := 0
	go func() {
		n++
	}()
}`,
			// The literal's body increments the *captured* n: the def inside
			// func1 carries the parent's symbol.
			want: []string{"p.F.func1.entry -def(p.F.n)", "go(p.F.func1)-> p.F.func1.entry"},
		},
		{
			name: "augmented assignment is write-only",
			src: `package p
func F(n int) int {
	var s int
	s += n
	return s
}`,
			want: []string{"decl(p.F.s)", "use(p.F.n)", "def(p.F.s)", "use(p.F.s)"},
		},
		{
			name: "channel receive emits use and recv",
			src: `package p
func F(ch chan int) int {
	v := <-ch
	return v
}`,
			want: []string{"use(p.F.ch)", "recv(p.F.ch)", "def(p.F.v)"},
		},
		{
			name: "panic runs defers and leaves",
			src: `package p
func F(mu interface{ Unlock() }) {
	defer mu.Unlock()
	panic("boom")
}`,
			want: []string{"defer(unlock:p.F.mu,p.F.d1)", "call(panic)", "unlock(p.F.mu)"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := LoadSource(map[string]string{"x.go": tc.src}, Config{Interproc: true})
			if err != nil {
				t.Fatal(err)
			}
			dump := p.DebugDump()
			at := 0
			for _, w := range tc.want {
				i := strings.Index(dump[at:], w)
				if i < 0 {
					t.Fatalf("dump missing %q (in order) after offset %d:\n%s", w, at, dump)
				}
				at += i + len(w)
			}
		})
	}
}

// TestEntryExitShape asserts the per-function frame: root entry edge, defs
// for params at entry, exit(f) edge out of the return join.
func TestEntryExitShape(t *testing.T) {
	p, err := LoadSource(map[string]string{"x.go": `package p
func Add(a, b int) (sum int) {
	sum = a + b
	return
}`}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dump := p.DebugDump()
	for _, want := range []string{
		"root -entry(p.Add)-> p.Add.entry",
		"def(p.Add.a)", "def(p.Add.b)", "def(p.Add.sum)",
		"p.Add.ret -exit(p.Add)-> p.Add.exit",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}
