// Package cfgschema fixes the shared label schema that every program
// front end (internal/minic, internal/minipy, internal/gofront) emits and
// that the analysis catalog (internal/queries) is written against. The
// schema is the contract that makes catalog queries frontend-agnostic: a
// pattern such as "(!def(x))* use(x)" runs unchanged on a MiniC program, a
// MiniPy module, or a real Go package because every front end lowers to the
// same constructor names and arities.
//
// Before this package existed the conventions lived implicitly in each
// front end, and they had drifted: MiniC and MiniPy emitted the paper's
// acq(m)/rel(m) labels for locking while the Go frontend's schema mandates
// lock(m)/unlock(m). The canonical names are lock/unlock; Canonical maps
// the paper's historical spellings onto them, and the front ends accept
// acq/rel in source while emitting the canonical labels, so one locking
// query serves every language.
//
// internal/analyze's RPQ016 alphabet-coverage advisory leans on the same
// idea from the other side: it warns when a query references a constructor
// the loaded graph never emits, catching schema drift before it turns into
// a silently empty answer set.
package cfgschema

import (
	"strconv"

	"rpq/internal/label"
)

// Ctor describes one constructor of the shared CFG label schema.
type Ctor struct {
	// Name is the canonical constructor name as it appears in edge labels
	// and query patterns.
	Name string
	// Arities lists the argument counts the constructor occurs with.
	Arities []int
	// Emitters names the front ends that emit the constructor
	// ("minic", "minipy", "gofront", "lts").
	Emitters []string
	// Doc says what an edge with this label means.
	Doc string
}

// Schema returns the full shared constructor table, in documentation order.
func Schema() []Ctor {
	return []Ctor{
		{"nop", []int{0}, []string{"minic", "minipy", "gofront"}, "control-flow-only edge (joins, loop back-edges)"},
		{"entry", []int{0, 1}, []string{"minic", "minipy", "gofront"}, "program entry self-loop (arity 0, Section 5.1 backward queries) or function entry entry(f) (arity 1, gofront's per-function roots)"},
		{"exit", []int{0, 1}, []string{"minic", "minipy", "gofront"}, "function/program exit; exit(f) carries the function name in multi-function graphs"},
		{"def", []int{1, 2}, []string{"minic", "minipy", "gofront"}, "definition of variable x; def(x,k) additionally records a constant value (MiniC ConstDefs)"},
		{"decl", []int{1}, []string{"gofront"}, "declaration without initialization (Go `var x T`); the uninit-use check reads a use after decl with no intervening def as a possible zero-value read"},
		{"use", []int{1, 2}, []string{"minic", "minipy", "gofront"}, "read of variable x; use(x,l) carries a distinct use-site number (MiniC/MiniPy UseSites)"},
		{"call", []int{1}, []string{"minic", "minipy", "gofront"}, "call of function f (intraprocedural step, and the interprocedural edge into f's entry)"},
		{"mcall", []int{2}, []string{"gofront"}, "method call mcall(x, m): method m invoked on receiver path x (gofront; receiver identity is syntactic)"},
		{"ret", []int{1}, []string{"minic", "gofront"}, "interprocedural return edge from f's exit back to the call site's resume vertex"},
		{"defer", []int{2}, []string{"gofront"}, "defer registration defer(f, s): deferred callee f at unique site s; the deferred effect itself is re-emitted on paths to exit"},
		{"go", []int{1}, []string{"gofront"}, "goroutine launch go(f); interprocedurally also an edge into f's entry (no matching ret)"},
		{"send", []int{1}, []string{"gofront"}, "channel send on x (panics after close(x))"},
		{"recv", []int{1}, []string{"gofront"}, "channel receive from x"},
		{"close", []int{1}, []string{"minic", "minipy", "gofront"}, "closing resource x: MiniC/MiniPy close(f) effect calls, Go close(ch) and x.Close()"},
		{"lock", []int{1}, []string{"minic", "minipy", "gofront"}, "acquire mutex m (canonical; the paper spells it acq(m), which front ends still accept in source)"},
		{"unlock", []int{1}, []string{"minic", "minipy", "gofront"}, "release mutex m (canonical; paper spelling rel(m))"},
		{"rlock", []int{1}, []string{"gofront"}, "acquire read lock on m (Go RLock; deliberately distinct from lock so re-entrant read locking is not flagged)"},
		{"runlock", []int{1}, []string{"gofront"}, "release read lock on m"},
		{"open", []int{1}, []string{"minic", "minipy"}, "open resource f (Section 2.2 file discipline)"},
		{"access", []int{1}, []string{"minic", "minipy"}, "access resource f"},
		{"malloc", []int{1}, []string{"minic", "minipy"}, "allocate pointer p"},
		{"free", []int{1}, []string{"minic", "minipy"}, "free pointer p"},
		{"deref", []int{1}, []string{"minic", "minipy"}, "dereference pointer p"},
		{"exp", []int{3}, []string{"minic"}, "binary expression exp(a, op, b) over two variables (available-expressions query)"},
		{"save", []int{1}, []string{"minic", "minipy"}, "save interrupt level (Section 2.2 interrupt discipline)"},
		{"restore", []int{1}, []string{"minic", "minipy"}, "restore interrupt level"},
		{"change", []int{0}, []string{"minic", "minipy"}, "change interrupt level"},
		{"seteuid", []int{1}, []string{"minic", "minipy"}, "set effective uid (Section 2.2 setuid discipline)"},
		{"state", []int{1}, []string{"lts"}, "LTS state label (Section 2.3 transformation)"},
		{"act", []int{1}, []string{"lts"}, "LTS action label"},
	}
}

// aliases maps the paper's historical constructor spellings onto the
// canonical schema names. Front ends apply it when lowering effect calls so
// old sources keep working while graphs carry one vocabulary.
var aliases = map[string]string{
	"acq": "lock",
	"rel": "unlock",
}

// Canonical returns the canonical schema name for a constructor, resolving
// paper-era aliases (acq→lock, rel→unlock); unknown names pass through.
func Canonical(name string) string {
	if c, ok := aliases[name]; ok {
		return c
	}
	return name
}

// Lookup finds a schema constructor by canonical name.
func Lookup(name string) (Ctor, bool) {
	for _, c := range Schema() {
		if c.Name == name {
			return c, true
		}
	}
	return Ctor{}, false
}

// HasArity reports whether the schema knows constructor name at the given
// arity.
func HasArity(name string, arity int) bool {
	c, ok := Lookup(name)
	if !ok {
		return false
	}
	for _, a := range c.Arities {
		if a == arity {
			return true
		}
	}
	return false
}

// ---- Canonical label constructors ----
//
// Front ends build their edge labels through these helpers so emitted
// constructor names and arities cannot drift from the schema table.

// Nop is the control-flow-only edge label.
func Nop() *label.Term { return label.App("nop") }

// Entry is the arity-0 program-entry label (the Section 5.1 self-loop).
func Entry() *label.Term { return label.App("entry") }

// EntryOf labels the entry of function f in a multi-function graph.
func EntryOf(f string) *label.Term { return label.App("entry", label.Sym(f)) }

// Exit is the arity-0 exit label.
func Exit() *label.Term { return label.App("exit") }

// ExitOf labels the exit of function f.
func ExitOf(f string) *label.Term { return label.App("exit", label.Sym(f)) }

// Def labels a definition of x.
func Def(x string) *label.Term { return label.App("def", label.Sym(x)) }

// DefConst labels a constant definition def(x, k).
func DefConst(x, k string) *label.Term { return label.App("def", label.Sym(x), label.Sym(k)) }

// Decl labels a declaration of x without initialization.
func Decl(x string) *label.Term { return label.App("decl", label.Sym(x)) }

// Use labels a read of x.
func Use(x string) *label.Term { return label.App("use", label.Sym(x)) }

// UseAt labels a read of x with a distinct use-site number.
func UseAt(x string, site int) *label.Term {
	return label.App("use", label.Sym(x), label.Sym(strconv.Itoa(site)))
}

// Call labels a call of f.
func Call(f string) *label.Term { return label.App("call", label.Sym(f)) }

// MCall labels a method call of m on receiver path x.
func MCall(x, m string) *label.Term { return label.App("mcall", label.Sym(x), label.Sym(m)) }

// Ret labels the interprocedural return edge of f.
func Ret(f string) *label.Term { return label.App("ret", label.Sym(f)) }

// DeferAt labels a defer registration of callee f at unique site s.
func DeferAt(f, s string) *label.Term { return label.App("defer", label.Sym(f), label.Sym(s)) }

// Go labels a goroutine launch of f.
func Go(f string) *label.Term { return label.App("go", label.Sym(f)) }

// Send labels a channel send on x.
func Send(x string) *label.Term { return label.App("send", label.Sym(x)) }

// Recv labels a channel receive from x.
func Recv(x string) *label.Term { return label.App("recv", label.Sym(x)) }

// Close labels closing resource x.
func Close(x string) *label.Term { return label.App("close", label.Sym(x)) }

// Lock labels acquiring mutex m.
func Lock(m string) *label.Term { return label.App("lock", label.Sym(m)) }

// Unlock labels releasing mutex m.
func Unlock(m string) *label.Term { return label.App("unlock", label.Sym(m)) }

// RLock labels acquiring a read lock on m.
func RLock(m string) *label.Term { return label.App("rlock", label.Sym(m)) }

// RUnlock labels releasing a read lock on m.
func RUnlock(m string) *label.Term { return label.App("runlock", label.Sym(m)) }

// Effect builds an effect-call label, mapping the name through Canonical so
// paper-era sources (acq/rel) lower to the canonical vocabulary.
func Effect(name string, args ...*label.Term) *label.Term {
	return label.App(Canonical(name), args...)
}
