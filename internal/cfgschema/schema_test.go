package cfgschema

import (
	"testing"

	"rpq/internal/label"
)

func TestCanonicalAliases(t *testing.T) {
	cases := map[string]string{
		"acq":    "lock",
		"rel":    "unlock",
		"lock":   "lock",
		"unlock": "unlock",
		"open":   "open",
		"def":    "def",
		"frob":   "frob", // unknown names pass through
	}
	for in, want := range cases {
		if got := Canonical(in); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAliasTargetsAreInSchema(t *testing.T) {
	for alias, canon := range aliases {
		if _, ok := Lookup(canon); !ok {
			t.Errorf("alias %s maps to %s, which is not in the schema", alias, canon)
		}
		if _, ok := Lookup(alias); ok {
			t.Errorf("alias %s must not itself be a schema constructor", alias)
		}
	}
}

func TestSchemaWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Schema() {
		if c.Name == "" || c.Doc == "" || len(c.Arities) == 0 || len(c.Emitters) == 0 {
			t.Errorf("incomplete schema entry %+v", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate schema constructor %s", c.Name)
		}
		seen[c.Name] = true
	}
}

// TestHelpersMatchSchema pins every helper constructor to a schema-known
// (name, arity) pair so helpers and table cannot drift apart.
func TestHelpersMatchSchema(t *testing.T) {
	terms := []*label.Term{
		Nop(), Entry(), EntryOf("f"), Exit(), ExitOf("f"),
		Def("x"), DefConst("x", "1"), Decl("x"), Use("x"), UseAt("x", 3),
		Call("f"), MCall("x", "Read"), Ret("f"), DeferAt("f", "s1"), Go("f"),
		Send("ch"), Recv("ch"), Close("ch"),
		Lock("m"), Unlock("m"), RLock("m"), RUnlock("m"),
		Effect("acq", label.Sym("m")), Effect("rel", label.Sym("m")),
	}
	for _, tm := range terms {
		if !HasArity(tm.Name, len(tm.Args)) {
			t.Errorf("helper emitted %s/%d, not in schema", tm.Name, len(tm.Args))
		}
	}
}

func TestEffectCanonicalizes(t *testing.T) {
	tm := Effect("acq", label.Sym("m"))
	if tm.Name != "lock" {
		t.Errorf("Effect(acq) emitted %s, want lock", tm.Name)
	}
	tm = Effect("rel", label.Sym("m"))
	if tm.Name != "unlock" {
		t.Errorf("Effect(rel) emitted %s, want unlock", tm.Name)
	}
	tm = Effect("close", label.Sym("f"))
	if tm.Name != "close" {
		t.Errorf("Effect(close) emitted %s, want close", tm.Name)
	}
}
