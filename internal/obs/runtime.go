package obs

import "runtime/metrics"

// heapAllocsMetric is the runtime/metrics name of the cumulative count of
// heap-allocated bytes — the runtime.MemStats TotalAlloc figure, readable
// without a stop-the-world pause.
const heapAllocsMetric = "/gc/heap/allocs:bytes"

// HeapAllocBytes returns the cumulative bytes allocated on the heap since
// process start, read through runtime/metrics. Unlike
// runtime.ReadMemStats it does not stop the world, so it is cheap enough
// to call on every query. Deltas of this figure attribute allocation to a
// span of time; under concurrent queries the delta covers the whole
// process, so attribution is exact only for the allocations the span
// actually performed plus whatever ran alongside it.
func HeapAllocBytes() int64 {
	var s [1]metrics.Sample
	s[0].Name = heapAllocsMetric
	metrics.Read(s[:])
	if s[0].Value.Kind() == metrics.KindUint64 {
		return int64(s[0].Value.Uint64())
	}
	return 0
}
