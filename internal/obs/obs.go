// Package obs is the query engine's observability layer: structured
// lifecycle tracing, live metrics with a Prometheus-style text exposition,
// expvar/pprof HTTP endpoints, and a slow-query log. It depends only on the
// standard library and is designed so that the disabled path costs one nil
// check in the solver hot loops.
//
// The pieces fit together as follows. Solvers emit Events through a Tracer;
// sinks (RingSink, NDJSONSink, ChromeSink) record them. Solvers also sample
// live gauges (SolverGauges) backed by an atomic Registry, which the HTTP
// server exposes at /metrics while a query is running. A SlowLog records
// queries whose wall-clock time crosses a threshold.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KPhaseBegin marks the start of a named phase (Name = phase).
	KPhaseBegin Kind = iota
	// KPhaseEnd marks the end of a named phase; Dur holds its wall time.
	KPhaseEnd
	// KSpan is a retrospective completed phase (begin was not observed
	// live, e.g. pattern compilation done before the solver ran); Dur
	// holds its wall time.
	KSpan
	// KCounter is a monotonic total at emission time (Name, Value) —
	// match calls, cache hits/misses, worklist inserts, and similar.
	KCounter
	// KHighWater reports a new worklist high-water mark (Value = depth).
	KHighWater
	// KTableGrowth is a substitution-table growth snapshot (Name is
	// "substs" or "subst_bytes", Value the new figure).
	KTableGrowth
)

func (k Kind) String() string {
	switch k {
	case KPhaseBegin:
		return "phase_begin"
	case KPhaseEnd:
		return "phase_end"
	case KSpan:
		return "span"
	case KCounter:
		return "counter"
	case KHighWater:
		return "high_water"
	case KTableGrowth:
		return "table_growth"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one structured observation. The schema is deliberately flat —
// no per-event allocation is needed to build one.
type Event struct {
	// Time is the emission time.
	Time time.Time
	// Kind classifies the event.
	Kind Kind
	// Name is the phase name (phase/span events) or metric name
	// (counter/growth events).
	Name string
	// Value carries the metric value for counter/high-water/growth events.
	Value int64
	// Dur is the span duration for KPhaseEnd/KSpan.
	Dur time.Duration
	// Worker identifies the emitting solver thread: 0 is the coordinator
	// (or a sequential run), i > 0 is parallel worker i-1. ChromeSink maps
	// it to the trace's tid so per-worker timelines render as lanes.
	Worker int
	// TraceID/SpanID are the W3C trace identity of the request that caused
	// this event, as lowercase hex strings; empty for library runs without a
	// trace context. Solvers never set them — the StampTrace wrapper fills
	// them in on the way to the sinks.
	TraceID string
	SpanID  string
}

// Tracer receives events. Implementations must be safe for concurrent use;
// solvers call Emit from their run loop while sinks may be drained from
// other goroutines.
type Tracer interface {
	// Enabled reports whether events will be recorded; solvers use it to
	// skip building events entirely.
	Enabled() bool
	// Emit records one event.
	Emit(Event)
}

// nop is the disabled tracer.
type nop struct{}

func (nop) Enabled() bool { return false }
func (nop) Emit(Event)    {}

// Nop returns the no-op tracer: Enabled is false and Emit discards.
func Nop() Tracer { return nop{} }

// Ev builds an event stamped with the current time.
func Ev(k Kind, name string, value int64) Event {
	return Event{Time: time.Now(), Kind: k, Name: name, Value: value}
}

// SpanEv builds a completed-span event.
func SpanEv(k Kind, name string, d time.Duration) Event {
	return Event{Time: time.Now(), Kind: k, Name: name, Dur: d}
}

// Flusher is implemented by sinks that buffer events (ChromeSink). Solvers
// call Flush on error paths so a failing run still yields a complete trace
// file; Close also flushes.
type Flusher interface {
	Flush() error
}

// Flush flushes t if it (or, for a Multi, any member) buffers events.
func Flush(t Tracer) {
	switch s := t.(type) {
	case Flusher:
		s.Flush()
	case Multi:
		for _, m := range s {
			if m != nil {
				Flush(m)
			}
		}
	}
}

// Multi fans events out to several tracers; Enabled when any is.
type Multi []Tracer

// Enabled implements Tracer.
func (m Multi) Enabled() bool {
	for _, t := range m {
		if t != nil && t.Enabled() {
			return true
		}
	}
	return false
}

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		if t != nil && t.Enabled() {
			t.Emit(e)
		}
	}
}

// RingSink keeps the last N events in memory — the cheapest always-on sink
// for inspecting a run after the fact.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int
}

// NewRingSink returns a ring buffer holding the last n events (n >= 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Event, 0, n)}
}

// Enabled implements Tracer.
func (r *RingSink) Enabled() bool { return true }

// Emit implements Tracer.
func (r *RingSink) Emit(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total reports how many events were emitted (including overwritten ones).
func (r *RingSink) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained events in emission order.
func (r *RingSink) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
