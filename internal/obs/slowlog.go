package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowLog records queries whose wall-clock time crosses a threshold, one
// NDJSON record per slow query. A nil *SlowLog is a valid no-op, so callers
// thread it unconditionally.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	n         int
}

// NewSlowLog returns a log writing to w for queries at or above threshold.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	return &SlowLog{w: w, threshold: threshold}
}

// slowRecord is the NDJSON schema of one slow-query entry.
type slowRecord struct {
	TS      string  `json:"ts"`
	Query   string  `json:"query"`
	Kind    string  `json:"kind"`
	DurMS   float64 `json:"dur_ms"`
	Answers int     `json:"answers"`
	Workers int     `json:"workers,omitempty"`
	Table   string  `json:"table,omitempty"`
	// CPUMS and AllocBytes are the query's attributed CPU time and heap
	// allocation (process deltas over the run; see SlowDetail).
	CPUMS      float64 `json:"cpu_ms,omitempty"`
	AllocBytes int64   `json:"alloc_bytes,omitempty"`
	// HotStates holds the top few hottest automaton states by visit count
	// when the run carried an explain profile, so a slow entry localizes
	// its cost without a rerun.
	HotStates any `json:"hot_states,omitempty"`
	Stats     any `json:"stats,omitempty"`
	// Bundle is the diagnostic-bundle directory the watchdog wrote for this
	// query, when one was produced.
	Bundle string `json:"bundle,omitempty"`
	// TraceID/SpanID are the W3C trace identity of the originating request,
	// when the run carried one, so a slow entry is greppable by the same key
	// as the access log and trace sinks.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// SlowDetail is the optional execution context of a slow-query entry.
type SlowDetail struct {
	// Workers is the solver's worker count (0/1 = sequential).
	Workers int
	// Table names the substitution-table representation ("hash"/"nested").
	Table string
	// CPUTime is the process CPU time attributed to the query (0 = unknown).
	CPUTime time.Duration
	// AllocBytes is the heap allocation attributed to the query (0 = unknown).
	AllocBytes int64
	// HotStates is any JSON-marshallable ranking of the hottest automaton
	// states (typically the explain profile's top 3 by visits).
	HotStates any
	// Bundle is the diagnostic-bundle path for this query, when the
	// watchdog wrote one.
	Bundle string
	// TraceID/SpanID are the originating request's W3C trace identity
	// (lowercase hex), empty when the run carried no trace context.
	TraceID string
	SpanID  string
}

// Observe records the query if it was slow; it reports whether it did.
// stats may be any JSON-marshallable value (typically core.Stats).
func (l *SlowLog) Observe(kind, query string, d time.Duration, answers int, stats any) bool {
	return l.ObserveDetail(kind, query, d, answers, stats, SlowDetail{})
}

// ObserveDetail is Observe with execution context: worker count, table
// representation, and — when an explain profile was collected — the hottest
// automaton states.
func (l *SlowLog) ObserveDetail(kind, query string, d time.Duration, answers int, stats any, detail SlowDetail) bool {
	if l == nil || d < l.threshold {
		return false
	}
	rec := slowRecord{
		TS:         time.Now().UTC().Format(time.RFC3339Nano),
		Query:      query,
		Kind:       kind,
		DurMS:      float64(d.Microseconds()) / 1000,
		Answers:    answers,
		Workers:    detail.Workers,
		Table:      detail.Table,
		CPUMS:      float64(detail.CPUTime.Microseconds()) / 1000,
		AllocBytes: detail.AllocBytes,
		HotStates:  detail.HotStates,
		Stats:      stats,
		Bundle:     detail.Bundle,
		TraceID:    detail.TraceID,
		SpanID:     detail.SpanID,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.n++
	l.mu.Unlock()
	return true
}

// Count reports how many slow queries were recorded.
func (l *SlowLog) Count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Threshold returns the configured threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}
