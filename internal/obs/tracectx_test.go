package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(valid)
	if err != nil {
		t.Fatalf("parse %q: %v", valid, err)
	}
	if tc.TraceIDString() != "0123456789abcdef0123456789abcdef" {
		t.Errorf("trace id = %q", tc.TraceIDString())
	}
	if tc.SpanIDString() != "00f067aa0ba902b7" {
		t.Errorf("span id = %q", tc.SpanIDString())
	}
	if tc.Flags != 0x01 {
		t.Errorf("flags = %#x", tc.Flags)
	}
	if got := tc.Traceparent(); got != valid {
		t.Errorf("round trip = %q, want %q", got, valid)
	}

	bad := map[string]string{
		"empty":          "",
		"short":          "00-0123-4567-01",
		"long":           valid + "-extra",
		"version 01":     "01" + valid[2:],
		"version ff":     "ff" + valid[2:],
		"no dashes":      strings.ReplaceAll(valid, "-", "_"),
		"bad hex trace":  "00-0123456789abcdef0123456789abcdeg-00f067aa0ba902b7-01",
		"bad hex span":   "00-0123456789abcdef0123456789abcdef-00f067aa0ba902bg-01",
		"bad hex flags":  "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-0g",
		"all-zero trace": "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"all-zero span":  "00-0123456789abcdef0123456789abcdef-0000000000000000-01",
		"uppercase hex":  "00-0123456789ABCDEF0123456789ABCDEF-00F067AA0BA902B7-01",
	}
	for name, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, s)
		}
	}
}

func TestNewTraceContext(t *testing.T) {
	tc := NewTraceContext()
	if !tc.IsValid() {
		t.Fatal("new trace context is invalid")
	}
	if len(tc.TraceIDString()) != 32 || len(tc.SpanIDString()) != 16 {
		t.Fatalf("id lengths: %q %q", tc.TraceIDString(), tc.SpanIDString())
	}
	back, err := ParseTraceparent(tc.Traceparent())
	if err != nil {
		t.Fatalf("re-parse own traceparent %q: %v", tc.Traceparent(), err)
	}
	if back != tc {
		t.Fatalf("round trip: %+v != %+v", back, tc)
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	parent := NewTraceContext()
	child := parent.Child()
	if !child.IsValid() {
		t.Fatal("child is invalid")
	}
	if child.TraceID != parent.TraceID {
		t.Error("child changed the trace ID")
	}
	if child.SpanID == parent.SpanID {
		t.Error("child kept the parent span ID")
	}
	if child.Flags != parent.Flags {
		t.Error("child changed the flags")
	}
}

// Trace and request IDs must stay unique under concurrent generation — the
// middleware mints them on every request goroutine.
func TestIDUniquenessConcurrent(t *testing.T) {
	const goroutines, per = 8, 200
	var mu sync.Mutex
	seen := make(map[string]bool, goroutines*per*2)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, 0, per*2)
			for i := 0; i < per; i++ {
				tc := NewTraceContext()
				if !tc.IsValid() {
					t.Error("generated invalid trace context")
				}
				ids = append(ids, tc.TraceIDString()+tc.SpanIDString(), NewRequestID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate id %q", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestWithTraceAndTraceFrom(t *testing.T) {
	if _, ok := TraceFrom(context.Background()); ok {
		t.Fatal("empty context reported a trace")
	}
	tc := NewTraceContext()
	ctx := WithTrace(context.Background(), tc)
	got, ok := TraceFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFrom = %+v, %v", got, ok)
	}
}

// sliceTracer records emitted events for assertions.
type sliceTracer struct {
	mu     sync.Mutex
	events []Event
}

func (s *sliceTracer) Enabled() bool { return true }
func (s *sliceTracer) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func TestStampTrace(t *testing.T) {
	tc := NewTraceContext()
	if got := StampTrace(nil, tc); got != nil {
		t.Fatal("stamping a nil tracer returned non-nil")
	}
	inner := &sliceTracer{}
	if got := StampTrace(inner, TraceContext{}); got != Tracer(inner) {
		t.Fatal("stamping with an invalid trace should return the tracer unchanged")
	}
	st := StampTrace(inner, tc)
	st.Emit(Event{Name: "phase"})
	if len(inner.events) != 1 {
		t.Fatalf("forwarded %d events", len(inner.events))
	}
	e := inner.events[0]
	if e.TraceID != tc.TraceIDString() || e.SpanID != tc.SpanIDString() {
		t.Fatalf("stamped event: trace=%q span=%q", e.TraceID, e.SpanID)
	}
	if !st.Enabled() {
		t.Fatal("stamped tracer lost Enabled")
	}
}
