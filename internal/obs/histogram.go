package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2-spaced latency buckets: bucket i holds
// observations in [2^i, 2^(i+1)) microseconds, so 40 buckets cover sub-µs
// through ~12.7 days — far beyond any plausible query latency.
const histBuckets = 40

// Histogram is a lock-free latency histogram with log2-spaced microsecond
// buckets. Observe is safe to call from solver goroutines while the HTTP
// exposition computes quantiles; quantile estimates are exact to within a
// factor of 2 (the bucket midpoint is reported).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumUS  atomic.Int64
}

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	us := uint64(d.Microseconds())
	if us == 0 {
		return 0
	}
	b := bits.Len64(us) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[histBucket(d)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(d.Microseconds())
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumUS.Load()) * time.Microsecond
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) as the midpoint of the
// bucket containing that rank: 1.5·2^i µs for bucket i (1 µs for bucket 0).
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == 0 {
				return time.Microsecond
			}
			mid := int64(3) << (i - 1) // 1.5 * 2^i
			return time.Duration(mid) * time.Microsecond
		}
	}
	return time.Duration(int64(3)<<(histBuckets-2)) * time.Microsecond
}

// snapshot copies the bucket counts, total, and sum for exposition.
func (h *Histogram) snapshot() (counts [histBuckets]int64, count, sumUS int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.count.Load(), h.sumUS.Load()
}
