package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2-spaced latency buckets: bucket i holds
// observations in [2^i, 2^(i+1)) microseconds, so 40 buckets cover sub-µs
// through ~12.7 days — far beyond any plausible query latency.
const histBuckets = 40

// Histogram is a lock-free latency histogram with log2-spaced microsecond
// buckets. Observe is safe to call from solver goroutines while the HTTP
// exposition computes quantiles; quantile estimates are exact to within a
// factor of 2 (the bucket midpoint is reported).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumUS  atomic.Int64
	// exemplars holds, per bucket, the most recent traced observation — the
	// jump from a latency bucket to the trace (and profile slice) that landed
	// in it. Written only by ObserveTrace calls that carry a trace ID.
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to the most recent traced observation
// that landed in it, OpenMetrics-style: the trace ID, the observed value, and
// when it was recorded.
type Exemplar struct {
	TraceID string        `json:"trace_id"`
	Value   time.Duration `json:"-"`
	ValueMS float64       `json:"value_ms"`
	Time    time.Time     `json:"time"`
}

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	us := uint64(d.Microseconds())
	if us == 0 {
		return 0
	}
	b := bits.Len64(us) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveTrace(d, "")
}

// ObserveTrace records one latency sample and, when traceID is non-empty,
// replaces the bucket's exemplar so the exposition and dash can link the
// bucket to the most recent trace that landed in it.
func (h *Histogram) ObserveTrace(d time.Duration, traceID string) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	b := histBucket(d)
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(d.Microseconds())
	if traceID != "" {
		h.exemplars[b].Store(&Exemplar{
			TraceID: traceID,
			Value:   d,
			ValueMS: float64(d.Microseconds()) / 1000,
			Time:    time.Now().UTC(),
		})
	}
}

// BucketExemplar returns the exemplar of bucket i, nil when the bucket has
// seen no traced observation.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= histBuckets {
		return nil
	}
	return h.exemplars[i].Load()
}

// Exemplars returns the buckets that carry an exemplar, hottest (highest
// bucket index, i.e. slowest) first — the "top buckets with recent trace IDs"
// view for the dash and /debug surfaces.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := histBuckets - 1; i >= 0; i-- {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumUS.Load()) * time.Microsecond
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) as the midpoint of the
// bucket containing that rank: 1.5·2^i µs for bucket i (1 µs for bucket 0).
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == 0 {
				return time.Microsecond
			}
			mid := int64(3) << (i - 1) // 1.5 * 2^i
			return time.Duration(mid) * time.Microsecond
		}
	}
	return time.Duration(int64(3)<<(histBuckets-2)) * time.Microsecond
}

// snapshot copies the bucket counts, total, and sum for exposition.
func (h *Histogram) snapshot() (counts [histBuckets]int64, count, sumUS int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.count.Load(), h.sumUS.Load()
}
