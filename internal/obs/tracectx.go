package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
)

// TraceContext is a W3C Trace Context identity: a 128-bit trace ID shared by
// every span of one distributed request, a 64-bit span ID naming this
// process's own unit of work, and the sampled flag. It is the request-scoped
// key that joins an HTTP request to everything the engine records about it —
// trace events, in-flight snapshots, slow-log records, flight-recorder
// bundles, and pprof labels. The zero value is invalid (IsValid reports
// false); obtain one with NewTraceContext or ParseTraceparent.
type TraceContext struct {
	// TraceID is the 128-bit request identity, propagated unchanged across
	// process hops.
	TraceID [16]byte
	// SpanID is the 64-bit identity of this hop's span.
	SpanID [8]byte
	// Flags is the trace-flags octet; bit 0 is "sampled".
	Flags byte
}

// IsValid reports whether both IDs are non-zero, per the W3C spec (an
// all-zero trace or span ID is the defined invalid value).
func (tc TraceContext) IsValid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-hex-digit lowercase trace ID.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit lowercase span ID.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the context in the W3C traceparent header format,
// version 00: "00-<trace-id>-<span-id>-<flags>".
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceIDString(), tc.SpanIDString(), tc.Flags)
}

// Child returns a context with the same trace ID and a fresh span ID — the
// span this process contributes under an ingested parent.
func (tc TraceContext) Child() TraceContext {
	out := TraceContext{TraceID: tc.TraceID, Flags: tc.Flags}
	out.SpanID = newSpanID()
	return out
}

// idRand generates span/trace IDs. A process-local PRNG seeded once from
// crypto/rand is deterministic-collision-safe for ID purposes and avoids a
// syscall per request; the mutex keeps it goroutine-safe.
var (
	idMu   sync.Mutex
	idRand *rand.Rand
)

func init() {
	var seed [32]byte
	crand.Read(seed[:])
	idRand = rand.New(rand.NewChaCha8(seed))
}

// randBytes fills b with pseudo-random bytes, retrying the all-zero draw so
// generated IDs are always valid.
func randBytes(b []byte) {
	idMu.Lock()
	defer idMu.Unlock()
	for {
		for i := 0; i < len(b); i += 8 {
			v := idRand.Uint64()
			for j := i; j < len(b) && j < i+8; j++ {
				b[j] = byte(v)
				v >>= 8
			}
		}
		for _, c := range b {
			if c != 0 {
				return
			}
		}
	}
}

func newSpanID() [8]byte {
	var s [8]byte
	randBytes(s[:])
	return s
}

// NewTraceContext generates a fresh sampled trace: a random 128-bit trace ID
// and a random 64-bit span ID.
func NewTraceContext() TraceContext {
	var tc TraceContext
	randBytes(tc.TraceID[:])
	tc.SpanID = newSpanID()
	tc.Flags = 0x01
	return tc
}

// NewRequestID returns a fresh 16-hex-digit request identifier, the
// per-request key services stamp into response headers and logs (distinct
// from the trace, which a client may share across requests).
func NewRequestID() string {
	var b [8]byte
	randBytes(b[:])
	return hex.EncodeToString(b[:])
}

// ParseTraceparent parses a W3C traceparent header. It accepts version 00
// exactly: "00-" + 32 lowercase hex digits + "-" + 16 lowercase hex digits +
// "-" + 2 hex digits, rejecting malformed strings, unknown versions, and the
// all-zero (invalid) trace or span IDs, so callers can fall back to
// NewTraceContext on any error.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) != 55 {
		return tc, fmt.Errorf("obs: traceparent length %d, want 55", len(s))
	}
	if s[0] != '0' || s[1] != '0' {
		return tc, fmt.Errorf("obs: unsupported traceparent version %q", s[:2])
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	// hex.Decode would accept uppercase, but the spec mandates lowercase and
	// senders must not emit anything else; rejecting here keeps the header we
	// echo back byte-identical to the IDs we log.
	for _, c := range s[3:] {
		if c != '-' && !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return tc, fmt.Errorf("obs: traceparent has non-lowercase-hex %q", c)
		}
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return tc, fmt.Errorf("obs: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return tc, fmt.Errorf("obs: traceparent span-id: %w", err)
	}
	var fl [1]byte
	if _, err := hex.Decode(fl[:], []byte(s[53:55])); err != nil {
		return tc, fmt.Errorf("obs: traceparent flags: %w", err)
	}
	tc.Flags = fl[0]
	if tc.TraceID == [16]byte{} {
		return TraceContext{}, fmt.Errorf("obs: traceparent has all-zero trace-id")
	}
	if tc.SpanID == [8]byte{} {
		return TraceContext{}, fmt.Errorf("obs: traceparent has all-zero span-id")
	}
	return tc, nil
}

// traceKey keys the trace context in a context.Context.
type traceKey struct{}

// WithTrace returns ctx carrying tc; TraceFrom retrieves it. The rpq entry
// points read it once per query, so library code that never attaches a trace
// pays one nil Value lookup.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceFrom returns the trace context carried by ctx, if any.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceKey{}).(TraceContext)
	return tc, ok
}

// SpanUint64 returns the span ID as a uint64 (big-endian), for callers that
// want a numeric form.
func (tc TraceContext) SpanUint64() uint64 { return binary.BigEndian.Uint64(tc.SpanID[:]) }

// stampedTracer forwards events to an inner tracer with the trace identity
// filled in, so sinks spliced below it (NDJSON files, Chrome traces, the
// flight-recorder ring) record which request each event belongs to.
type stampedTracer struct {
	inner   Tracer
	traceID string
	spanID  string
}

// StampTrace wraps t so every event it records carries tc's trace and span
// IDs. A nil t or an invalid tc returns t unchanged.
func StampTrace(t Tracer, tc TraceContext) Tracer {
	if t == nil || !tc.IsValid() {
		return t
	}
	return &stampedTracer{inner: t, traceID: tc.TraceIDString(), spanID: tc.SpanIDString()}
}

// Enabled implements Tracer.
func (s *stampedTracer) Enabled() bool { return s.inner.Enabled() }

// Emit implements Tracer.
func (s *stampedTracer) Emit(e Event) {
	e.TraceID = s.traceID
	e.SpanID = s.spanID
	s.inner.Emit(e)
}
