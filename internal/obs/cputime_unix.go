//go:build unix

package obs

import (
	"syscall"
	"time"
)

// ProcessCPUTime returns the process's cumulative CPU time (user + system,
// all threads) via getrusage(2). Deltas of this figure attribute CPU to a
// span of wall time; under concurrent queries the delta covers the whole
// process, so per-query attribution is an upper bound — use the pprof
// labels attached to each run for exact per-query CPU profiles.
func ProcessCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano()+ru.Stime.Nano()) * time.Nanosecond
}
