package obs

import "net/http"

// DashHandler serves the live ops dashboard: a single self-contained HTML
// page (no external assets, no dependencies) that polls /debug/rpq/ts and
// /debug/rpq/queries and renders sparklines for query rate, latency
// quantiles, in-flight count, heap, GC pauses, and goroutines, with
// drill-down links to the JSON endpoints and pprof. All rendering happens
// client-side; the handler just serves the page.
func DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashHTML))
	})
}

// dashHTML is the dashboard page. The palette follows the repository's
// chart conventions: categorical slots assigned in fixed order (blue,
// orange, aqua), text in text tokens rather than series colors, recessive
// grid, and selected dark-mode steps rather than an automatic flip.
const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>rpq dashboard</title>
<style>
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e3e2de;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --surface-2: #262624;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px 20px; background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { display: flex; align-items: baseline; gap: 16px; flex-wrap: wrap; margin-bottom: 12px; }
h1 { font-size: 18px; margin: 0; font-weight: 600; }
nav a { color: var(--text-secondary); margin-right: 12px; text-decoration: none; border-bottom: 1px dotted var(--text-secondary); }
nav a:hover { color: var(--text-primary); }
#status { color: var(--text-secondary); font-size: 12px; }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(300px, 1fr)); gap: 12px; }
.card { background: var(--surface-2); border-radius: 8px; padding: 10px 12px 6px; }
.card h2 { font-size: 12px; font-weight: 600; color: var(--text-secondary); margin: 0; text-transform: uppercase; letter-spacing: .04em; }
.card .now { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; margin: 2px 0 4px; }
.card .now small { font-size: 12px; font-weight: 400; color: var(--text-secondary); }
.legend { font-size: 11px; color: var(--text-secondary); margin: 0 0 2px; }
.legend .swatch { display: inline-block; width: 8px; height: 8px; border-radius: 2px; margin: 0 4px 0 10px; vertical-align: baseline; }
.legend .swatch:first-child { margin-left: 0; }
svg { display: block; width: 100%; height: 64px; }
.hoverval { font-size: 11px; color: var(--text-secondary); min-height: 15px; font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%; margin-top: 16px; font-size: 13px; font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 500; font-size: 12px; }
#empty { color: var(--text-secondary); margin-top: 8px; }
</style>
</head>
<body>
<header>
  <h1>rpq live dashboard</h1>
  <nav>
    <a href="/debug/rpq/">debug index</a>
    <a href="/debug/rpq/queries">in-flight queries</a>
    <a href="/debug/rpq/ts">time-series JSON</a>
    <a href="/debug/rpq/prof">profiles</a>
    <a href="/metrics">metrics</a>
    <a href="/debug/pprof/">pprof</a>
  </nav>
  <span id="status">connecting&hellip;</span>
</header>
<div class="grid" id="cards"></div>
<div id="slosec" style="display:none">
<h1 style="font-size:15px;margin-top:20px">SLO burn rate</h1>
<div id="slo"></div>
</div>
<h1 style="font-size:15px;margin-top:20px">Queries executing now</h1>
<div id="inflight"><p id="empty">none</p></div>
<div id="profsec" style="display:none">
<h1 style="font-size:15px;margin-top:20px">CPU profile <small id="profmeta" style="font-weight:400;color:var(--text-secondary)"></small></h1>
<svg id="icicle" viewBox="0 0 1000 160" preserveAspectRatio="none" style="height:160px"></svg>
<div class="hoverval" id="iciclehover"></div>
</div>
<div id="exsec" style="display:none">
<h1 style="font-size:15px;margin-top:20px">Latency exemplars</h1>
<div id="exemplars"></div>
</div>
<script>
"use strict";
// Card definitions: each pulls one or more series from the rpq-tsdb/1
// document. transform maps raw values to display units; rate differentiates
// a monotonic counter against the timestamps.
var CARDS = [
  {id: "qrate", title: "Query rate", unit: "q/s", series: [
    {name: "rpq_queries_total", label: "rate", rate: true, scale: 1}]},
  {id: "lat", title: "Query latency", unit: "ms", series: [
    {name: "rpq_query_seconds_p50_us", label: "p50", scale: 1e-3},
    {name: "rpq_query_seconds_p95_us", label: "p95", scale: 1e-3},
    {name: "rpq_query_seconds_p99_us", label: "p99", scale: 1e-3}]},
  {id: "infl", title: "In-flight queries", unit: "", series: [
    {name: "rpq_inflight_queries", label: "in-flight", scale: 1}]},
  {id: "heap", title: "Live heap", unit: "MiB", series: [
    {name: "go_heap_live_bytes", label: "heap", scale: 1 / 1048576}]},
  {id: "gc", title: "GC pause", unit: "µs", series: [
    {name: "go_gc_pause_p50_us", label: "p50", scale: 1},
    {name: "go_gc_pause_p99_us", label: "p99", scale: 1}]},
  {id: "gor", title: "Goroutines", unit: "", series: [
    {name: "go_goroutines", label: "goroutines", scale: 1}]}
];
var COLORS = ["var(--series-1)", "var(--series-2)", "var(--series-3)"];
var W = 300, H = 64, PAD = 3;

function el(tag, attrs, parent) {
  var ns = (tag === "svg" || tag === "path" || tag === "line" ||
      tag === "rect" || tag === "text") ?
    document.createElementNS("http://www.w3.org/2000/svg", tag) :
    document.createElement(tag);
  for (var k in attrs) { ns.setAttribute(k, attrs[k]); }
  if (parent) { parent.appendChild(ns); }
  return ns;
}

// buildCards creates the DOM skeleton once.
(function () {
  var grid = document.getElementById("cards");
  CARDS.forEach(function (c) {
    var card = el("div", {"class": "card", id: "card-" + c.id}, grid);
    var h = el("h2", {}, card); h.textContent = c.title;
    el("div", {"class": "now", id: "now-" + c.id}, card);
    if (c.series.length > 1) {
      var lg = el("p", {"class": "legend", id: "legend-" + c.id}, card);
      c.series.forEach(function (s, i) {
        var sw = el("span", {"class": "swatch"}, lg);
        sw.style.background = COLORS[i];
        lg.appendChild(document.createTextNode(s.label));
      });
    }
    var svg = el("svg", {viewBox: "0 0 " + W + " " + H,
      preserveAspectRatio: "none", id: "svg-" + c.id}, card);
    el("line", {x1: 0, y1: H - 1, x2: W, y2: H - 1, stroke: "var(--grid)",
      "stroke-width": 1}, svg);
    el("div", {"class": "hoverval", id: "hover-" + c.id}, card);
  });
})();

// seriesValues extracts one display-ready numeric array (nulls preserved).
function seriesValues(doc, spec) {
  var raw = doc.series[spec.name];
  if (!raw) { return null; }
  var ts = doc.timestamps_ms, out = [], i;
  if (spec.rate) {
    out.push(null);
    for (i = 1; i < raw.length; i++) {
      var dt = (ts[i] - ts[i - 1]) / 1000;
      out.push(raw[i] == null || raw[i - 1] == null || dt <= 0 ? null :
        Math.max(0, (raw[i] - raw[i - 1]) / dt) * spec.scale);
    }
    return out;
  }
  for (i = 0; i < raw.length; i++) {
    out.push(raw[i] == null ? null : raw[i] * spec.scale);
  }
  return out;
}

function fmt(v, unit) {
  if (v == null) { return "–"; }
  var s = v >= 100 ? Math.round(v).toString() :
    v >= 10 ? v.toFixed(1) : v.toFixed(2);
  return unit ? s + " " + unit : s;
}

// renderCard redraws one card's sparklines from the current document.
function renderCard(doc, c) {
  var svg = document.getElementById("svg-" + c.id);
  svg.querySelectorAll("path").forEach(function (p) { p.remove(); });
  var cols = c.series.map(function (s) { return seriesValues(doc, s); });
  var max = 0, n = doc.timestamps_ms.length;
  cols.forEach(function (col) {
    if (col) { col.forEach(function (v) { if (v != null && v > max) { max = v; } }); }
  });
  if (max === 0) { max = 1; }
  cols.forEach(function (col, ci) {
    if (!col || n < 2) { return; }
    var d = "", pen = false, i;
    for (i = 0; i < n; i++) {
      if (col[i] == null) { pen = false; continue; }
      var x = PAD + (W - 2 * PAD) * i / (n - 1);
      var y = H - PAD - (H - 2 * PAD) * col[i] / max;
      d += (pen ? "L" : "M") + x.toFixed(1) + " " + y.toFixed(1);
      pen = true;
    }
    el("path", {d: d, fill: "none", stroke: COLORS[ci], "stroke-width": 2,
      "stroke-linejoin": "round", "stroke-linecap": "round"}, svg);
  });
  var lastCol = cols[0], last = null, i2;
  if (lastCol) {
    for (i2 = lastCol.length - 1; i2 >= 0; i2--) {
      if (lastCol[i2] != null) { last = lastCol[i2]; break; }
    }
  }
  var now = document.getElementById("now-" + c.id);
  now.innerHTML = "";
  now.appendChild(document.createTextNode(fmt(last, "")));
  var u = el("small", {}, now);
  u.textContent = c.unit ? " " + c.unit : "";
  svg.onmousemove = function (ev) {
    var rect = svg.getBoundingClientRect();
    var idx = Math.round((ev.clientX - rect.left) / rect.width * (n - 1));
    if (idx < 0 || idx >= n) { return; }
    var parts = c.series.map(function (s, ci) {
      var col2 = cols[ci];
      return s.label + " " + fmt(col2 ? col2[idx] : null, c.unit);
    });
    document.getElementById("hover-" + c.id).textContent =
      new Date(doc.timestamps_ms[idx]).toLocaleTimeString() + "  " + parts.join("  ");
  };
  svg.onmouseleave = function () {
    document.getElementById("hover-" + c.id).textContent = "";
  };
}

function renderInflight(qs) {
  var host = document.getElementById("inflight");
  if (!qs || qs.length === 0) {
    host.innerHTML = '<p id="empty">none</p>';
    return;
  }
  var cols = [["id", "id"], ["kind", "kind"], ["algo", "algo"],
    ["phase", "phase"], ["elapsed ms", "elapsed_ms"], ["pops", "pops"],
    ["reach", "reach_size"], ["substs", "substs"], ["cpu ms", "cpu_ms"],
    ["alloc bytes", "alloc_bytes"], ["trace", "trace_id"], ["query", "query"]];
  var t = document.createElement("table");
  var tr = document.createElement("tr");
  cols.forEach(function (cc) {
    var th = document.createElement("th"); th.textContent = cc[0]; tr.appendChild(th);
  });
  t.appendChild(tr);
  qs.forEach(function (q) {
    var row = document.createElement("tr");
    cols.forEach(function (cc) {
      var td = document.createElement("td");
      var v = q[cc[1]];
      td.textContent = typeof v === "number" ? Math.round(v * 100) / 100 : (v == null ? "" : v);
      row.appendChild(td);
    });
    t.appendChild(row);
  });
  host.innerHTML = "";
  host.appendChild(t);
}

// renderSLO draws the burn-rate table from the rpq-slo/1 document; the
// whole section stays hidden when the server has no SLO tracker (501).
function renderSLO(doc) {
  var sec = document.getElementById("slosec");
  if (!doc || !doc.slos || doc.slos.length === 0) { sec.style.display = "none"; return; }
  sec.style.display = "";
  var host = document.getElementById("slo");
  var t = document.createElement("table");
  var tr = document.createElement("tr");
  ["route", "objective", "window", "span", "total", "bad", "burn rate", "budget left"].forEach(function (h) {
    var th = document.createElement("th"); th.textContent = h; tr.appendChild(th);
  });
  t.appendChild(tr);
  doc.slos.forEach(function (s) {
    var ws = s.windows && s.windows.length ? s.windows : [null];
    ws.forEach(function (wdw, i) {
      var row = document.createElement("tr");
      function td(v, color) {
        var c = document.createElement("td");
        c.textContent = v;
        if (color) { c.style.color = color; }
        row.appendChild(c);
      }
      td(i === 0 ? s.route : "");
      td(i === 0 ? (s.objective * 100).toFixed(2) + "%" : "");
      if (!wdw) {
        td("no data"); td(""); td(""); td(""); td(""); td("");
      } else {
        td(wdw.window);
        td((wdw.span_ms / 1000).toFixed(0) + "s");
        td(wdw.total);
        td(wdw.bad);
        td(wdw.burn_rate.toFixed(2) + "×",
          wdw.burn_rate >= 1 ? "var(--series-2)" : "");
      }
      td(i === 0 ? (s.error_budget_remaining * 100).toFixed(1) + "%" : "");
      t.appendChild(row);
    });
  });
  host.innerHTML = "";
  host.appendChild(t);
}

// renderIcicle draws the latest profile window's call tree as a root-down
// icicle: each node a rect whose width is its share of the root total.
function renderIcicle(doc) {
  var sec = document.getElementById("profsec");
  if (!doc || !doc.root || !doc.root.value) { sec.style.display = "none"; return; }
  sec.style.display = "";
  document.getElementById("profmeta").textContent =
    "window " + doc.window + " · " + doc.profile + " (" + doc.unit + ")";
  var svg = document.getElementById("icicle");
  svg.innerHTML = "";
  var total = doc.root.value, ROW = 20, MAXD = 8;
  function draw(node, x0, x1, depth) {
    if (depth > MAXD || x1 - x0 < 1) { return; }
    var r = el("rect", {x: x0.toFixed(1), y: depth * ROW, width: (x1 - x0).toFixed(1),
      height: ROW - 1, rx: 1}, svg);
    r.setAttribute("fill", depth === 0 ? "var(--grid)" :
      COLORS[(depth - 1) % COLORS.length]);
    r.setAttribute("fill-opacity", depth === 0 ? "1" : (0.9 - 0.08 * depth).toFixed(2));
    var pct = (100 * node.value / total).toFixed(1);
    r.onmousemove = function () {
      document.getElementById("iciclehover").textContent =
        node.name + " — " + pct + "% (" + node.value + " " + doc.unit + ")";
    };
    if (x1 - x0 > 60) {
      var t = el("text", {x: (x0 + 3).toFixed(1), y: depth * ROW + ROW - 6,
        "font-size": 10, fill: "var(--text-primary)"}, svg);
      t.textContent = node.name.split("/").pop();
    }
    var x = x0;
    (node.children || []).forEach(function (c) {
      var w = (x1 - x0) * c.value / node.value;
      draw(c, x, x + w, depth + 1);
      x += w;
    });
  }
  draw(doc.root, 0, 1000, 0);
}

// renderExemplars draws the latency-bucket exemplar table: slowest buckets
// first, each trace ID linking to its profile slice.
function renderExemplars(doc) {
  var sec = document.getElementById("exsec");
  var ex = doc && doc.exemplars;
  if (!ex || ex.length === 0) { sec.style.display = "none"; return; }
  sec.style.display = "";
  var host = document.getElementById("exemplars");
  var t = document.createElement("table");
  var tr = document.createElement("tr");
  ["latency ms", "trace", "when"].forEach(function (h) {
    var th = document.createElement("th"); th.textContent = h; tr.appendChild(th);
  });
  t.appendChild(tr);
  ex.slice(0, 10).forEach(function (e) {
    var row = document.createElement("tr");
    var td1 = document.createElement("td");
    td1.textContent = e.value_ms.toFixed(2);
    row.appendChild(td1);
    var td2 = document.createElement("td");
    var a = document.createElement("a");
    a.href = "/debug/rpq/prof?trace=" + encodeURIComponent(e.trace_id);
    a.textContent = e.trace_id;
    td2.appendChild(a);
    row.appendChild(td2);
    var td3 = document.createElement("td");
    td3.textContent = new Date(e.time).toLocaleTimeString();
    row.appendChild(td3);
    t.appendChild(row);
  });
  host.innerHTML = "";
  host.appendChild(t);
}

function tick() {
  fetch("/debug/rpq/ts").then(function (r) {
    if (!r.ok) { throw new Error("time-series store disabled (HTTP " + r.status + ")"); }
    return r.json();
  }).then(function (doc) {
    document.getElementById("status").textContent =
      doc.points + " points @ " + doc.interval_ms + "ms · schema " + doc.schema;
    CARDS.forEach(function (c) { renderCard(doc, c); });
  }).catch(function (e) {
    document.getElementById("status").textContent = e.message;
  });
  fetch("/debug/rpq/queries").then(function (r) { return r.json(); })
    .then(function (doc) { renderInflight(doc.queries); })
    .catch(function () {});
  fetch("/debug/rpq/slo").then(function (r) {
    if (!r.ok) { throw new Error("disabled"); }
    return r.json();
  }).then(renderSLO).catch(function () {
    document.getElementById("slosec").style.display = "none";
  });
  fetch("/debug/rpq/prof/tree").then(function (r) {
    if (!r.ok) { throw new Error("disabled"); }
    return r.json();
  }).then(renderIcicle).catch(function () {
    document.getElementById("profsec").style.display = "none";
  });
  fetch("/debug/rpq/exemplars").then(function (r) {
    if (!r.ok) { throw new Error("disabled"); }
    return r.json();
  }).then(renderExemplars).catch(function () {
    document.getElementById("exsec").style.display = "none";
  });
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
