package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar publication: expvar.Publish panics on
// duplicate names, and tests may start several servers in one process.
var publishOnce sync.Once

// ServeOptions configures the observability HTTP server.
type ServeOptions struct {
	// Registry is the metric registry served on /metrics and /debug/vars;
	// nil means Default().
	Registry *Registry
	// Inflight is the in-flight query registry served on /debug/rpq/queries;
	// nil means DefaultInflight().
	Inflight *Inflight
	// TimeSeries, when non-nil, is exported on /debug/rpq/ts and feeds the
	// dashboard's sparklines. The server does not start or stop it.
	TimeSeries *TimeSeries
	// SLO, when non-nil, is served on /debug/rpq/slo and feeds the
	// dashboard's burn-rate panel.
	SLO *SLOTracker
}

// Serve starts the observability HTTP server on addr with default options;
// see ServeWith.
func Serve(addr string, reg *Registry) (*http.Server, error) {
	return ServeWith(addr, ServeOptions{Registry: reg})
}

// ServeWith starts the observability HTTP server on addr (e.g.
// "localhost:6060") serving:
//
//	/metrics            Prometheus text exposition of the live gauges and
//	                    latency histograms (summary + _hist families), plus
//	                    rpq_build_info
//	/debug/rpq/queries  JSON snapshots of the queries executing right now
//	/debug/rpq/ts       the retained telemetry window as rpq-tsdb/1 JSON
//	/debug/rpq/slo      SLO burn rates as rpq-slo/1 JSON (when configured)
//	/debug/rpq/dash     the live HTML dashboard
//	/debug/vars         expvar JSON (includes the registry under "rpq_metrics")
//	/debug/pprof/       the standard pprof profile index
//
// The listener is bound synchronously — a bad address fails here, not
// later — and requests are served on a background goroutine. The returned
// server can be Closed to stop it.
//
// The expvar "rpq_metrics" variable is process-global (expvar.Publish panics
// on duplicates) and is bound to the registry of the first Serve call.
func ServeWith(addr string, o ServeOptions) (*http.Server, error) {
	reg := o.Registry
	if reg == nil {
		reg = Default()
	}
	inflight := o.Inflight
	if inflight == nil {
		inflight = DefaultInflight()
	}
	publishOnce.Do(func() {
		expvar.Publish("rpq_metrics", expvar.Func(func() any { return reg.Snapshot() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
		WriteBuildInfo(w)
	})
	mux.HandleFunc("/debug/rpq/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snaps := inflight.Snapshots()
		if snaps == nil {
			snaps = []QuerySnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"queries": snaps})
	})
	mux.HandleFunc("/debug/rpq/ts", func(w http.ResponseWriter, r *http.Request) {
		if o.TimeSeries == nil {
			http.Error(w, "time-series store not enabled on this server", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.TimeSeries.WriteJSON(w)
	})
	mux.HandleFunc("/debug/rpq/slo", func(w http.ResponseWriter, r *http.Request) {
		if o.SLO == nil {
			http.Error(w, "SLO tracking not enabled on this server", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.SLO.WriteJSON(w)
	})
	mux.Handle("/debug/rpq/dash", DashHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "rpq observability\n\n/metrics\n/debug/rpq/queries\n/debug/rpq/ts\n/debug/rpq/slo\n/debug/rpq/dash\n/debug/vars\n/debug/pprof/\n")
	})
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}
