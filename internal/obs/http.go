package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar publication: expvar.Publish panics on
// duplicate names, and tests may start several servers in one process.
var publishOnce sync.Once

// ServeOptions configures the observability HTTP server.
type ServeOptions struct {
	// Registry is the metric registry served on /metrics and /debug/vars;
	// nil means Default().
	Registry *Registry
	// Inflight is the in-flight query registry served on /debug/rpq/queries;
	// nil means DefaultInflight().
	Inflight *Inflight
	// TimeSeries, when non-nil, is exported on /debug/rpq/ts and feeds the
	// dashboard's sparklines. The server does not start or stop it.
	TimeSeries *TimeSeries
	// SLO, when non-nil, is served on /debug/rpq/slo and feeds the
	// dashboard's burn-rate panel.
	SLO *SLOTracker
	// Prof, when non-nil, is the continuous profiler's HTTP surface
	// (prof.Profiler.Handler()), mounted at /debug/rpq/prof.
	Prof http.Handler
	// QueryHist, when non-nil, feeds the /debug/rpq/exemplars endpoint and
	// the dashboard's trace-exemplar table (typically SolverGauges.QueryHist).
	QueryHist *Histogram
}

// debugSurface is one row of the /debug/rpq/ index.
type debugSurface struct {
	Path string `json:"path"`
	Desc string `json:"desc"`
	// Enabled is false for surfaces this server was started without.
	Enabled bool `json:"enabled"`
}

// Serve starts the observability HTTP server on addr with default options;
// see ServeWith.
func Serve(addr string, reg *Registry) (*http.Server, error) {
	return ServeWith(addr, ServeOptions{Registry: reg})
}

// ServeWith starts the observability HTTP server on addr (e.g.
// "localhost:6060") serving:
//
//	/metrics            Prometheus text exposition of the live gauges and
//	                    latency histograms (summary + _hist families), plus
//	                    rpq_build_info
//	/debug/rpq/         JSON index of every debug surface with descriptions
//	/debug/rpq/queries  JSON snapshots of the queries executing right now
//	/debug/rpq/ts       the retained telemetry window as rpq-tsdb/1 JSON
//	/debug/rpq/slo      SLO burn rates as rpq-slo/1 JSON (when configured)
//	/debug/rpq/prof     continuous-profiler windows as rpq-prof/1 JSON (when
//	                    configured; /diff, /tree, /download subpaths)
//	/debug/rpq/exemplars  latency-bucket trace exemplars as JSON
//	/debug/rpq/dash     the live HTML dashboard
//	/debug/vars         expvar JSON (includes the registry under "rpq_metrics")
//	/debug/pprof/       the standard pprof profile index
//
// The listener is bound synchronously — a bad address fails here, not
// later — and requests are served on a background goroutine. The returned
// server can be Closed to stop it.
//
// The expvar "rpq_metrics" variable is process-global (expvar.Publish panics
// on duplicates) and is bound to the registry of the first Serve call.
func ServeWith(addr string, o ServeOptions) (*http.Server, error) {
	reg := o.Registry
	if reg == nil {
		reg = Default()
	}
	inflight := o.Inflight
	if inflight == nil {
		inflight = DefaultInflight()
	}
	publishOnce.Do(func() {
		expvar.Publish("rpq_metrics", expvar.Func(func() any { return reg.Snapshot() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
		WriteBuildInfo(w)
	})
	mux.HandleFunc("/debug/rpq/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snaps := inflight.Snapshots()
		if snaps == nil {
			snaps = []QuerySnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"queries": snaps})
	})
	mux.HandleFunc("/debug/rpq/ts", func(w http.ResponseWriter, r *http.Request) {
		if o.TimeSeries == nil {
			http.Error(w, "time-series store not enabled on this server", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.TimeSeries.WriteJSON(w)
	})
	mux.HandleFunc("/debug/rpq/slo", func(w http.ResponseWriter, r *http.Request) {
		if o.SLO == nil {
			http.Error(w, "SLO tracking not enabled on this server", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.SLO.WriteJSON(w)
	})
	if o.Prof != nil {
		mux.Handle("/debug/rpq/prof", o.Prof)
		mux.Handle("/debug/rpq/prof/", o.Prof)
	} else {
		mux.HandleFunc("/debug/rpq/prof", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "continuous profiling not enabled on this server", http.StatusNotImplemented)
		})
	}
	mux.HandleFunc("/debug/rpq/exemplars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ex := o.QueryHist.Exemplars()
		if ex == nil {
			ex = []Exemplar{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"exemplars": ex})
	})
	// The debug index: every surface this server can expose, with one-line
	// descriptions, so operators stop guessing URLs.
	surfaces := []debugSurface{
		{"/metrics", "Prometheus text exposition: gauges, latency summaries + _hist bucket families with trace exemplars, rpq_build_info", true},
		{"/debug/rpq/", "this index", true},
		{"/debug/rpq/queries", "JSON snapshots of the queries executing right now", true},
		{"/debug/rpq/ts", "retained telemetry window as rpq-tsdb/1 JSON (sparkline source)", o.TimeSeries != nil},
		{"/debug/rpq/slo", "SLO burn rates per objective and window as rpq-slo/1 JSON", o.SLO != nil},
		{"/debug/rpq/prof", "continuous-profiler windows as rpq-prof/1 JSON; ?window=N&by=rpq_kind slices frames by pprof label, /diff?a=&b= diffs windows, /tree feeds the dash icicle, /download fetches the raw pprof proto", o.Prof != nil},
		{"/debug/rpq/exemplars", "latency-bucket trace exemplars (slowest buckets first) as JSON", o.QueryHist != nil},
		{"/debug/rpq/dash", "live HTML dashboard: sparklines, in-flight queries, SLO burn, profile icicle", true},
		{"/debug/vars", "expvar JSON including the registry under rpq_metrics", true},
		{"/debug/pprof/", "standard net/http/pprof index (on-demand profiles)", true},
	}
	mux.HandleFunc("/debug/rpq/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/rpq/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"schema": "rpq-debug/1", "surfaces": surfaces})
	})
	mux.Handle("/debug/rpq/dash", DashHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "rpq observability\n\n/metrics\n/debug/rpq/\n/debug/rpq/queries\n/debug/rpq/ts\n/debug/rpq/slo\n/debug/rpq/prof\n/debug/rpq/exemplars\n/debug/rpq/dash\n/debug/vars\n/debug/pprof/\n")
	})
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}
