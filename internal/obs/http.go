package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar publication: expvar.Publish panics on
// duplicate names, and tests may start several servers in one process.
var publishOnce sync.Once

// Serve starts the observability HTTP server on addr (e.g. "localhost:6060")
// serving, from the given registry (Default() when nil):
//
//	/metrics            Prometheus text exposition of the live gauges and
//	                    latency histograms
//	/debug/rpq/queries  JSON snapshots of the queries executing right now
//	/debug/vars         expvar JSON (includes the registry under "rpq_metrics")
//	/debug/pprof/       the standard pprof profile index
//
// The listener is bound synchronously — a bad address fails here, not
// later — and requests are served on a background goroutine. The returned
// server can be Closed to stop it.
//
// The expvar "rpq_metrics" variable is process-global (expvar.Publish panics
// on duplicates) and is bound to the registry of the first Serve call.
func Serve(addr string, reg *Registry) (*http.Server, error) {
	if reg == nil {
		reg = Default()
	}
	publishOnce.Do(func() {
		expvar.Publish("rpq_metrics", expvar.Func(func() any { return reg.Snapshot() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/rpq/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snaps := DefaultInflight().Snapshots()
		if snaps == nil {
			snaps = []QuerySnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"queries": snaps})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "rpq observability\n\n/metrics\n/debug/rpq/queries\n/debug/vars\n/debug/pprof/\n")
	})
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}
