package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Inflight tracks the queries currently executing in the process so they can
// be introspected mid-run (the /debug/rpq/queries endpoint, progress
// tickers, watchdog bundles). Begin registers a query and returns its live
// handle; Done removes it. All methods are safe for concurrent use.
type Inflight struct {
	mu   sync.Mutex
	next int64
	m    map[int64]*InflightQuery
}

// NewInflight returns an empty in-flight registry.
func NewInflight() *Inflight {
	return &Inflight{m: map[int64]*InflightQuery{}}
}

// defaultInflight backs DefaultInflight.
var defaultInflight = NewInflight()

// DefaultInflight returns the process-wide in-flight registry used by Serve
// and the rpq layer.
func DefaultInflight() *Inflight { return defaultInflight }

// InflightQuery is the live handle of one registered query. The immutable
// identity fields are set at Begin; the progress fields are atomics updated
// by the solver's progress callback while snapshot readers load them.
type InflightQuery struct {
	id    int64
	kind  string
	query string
	algo  string
	start time.Time
	reg   *Inflight

	// cpu0/alloc0 are the process CPU time and cumulative heap allocation at
	// Begin; Snapshot reports the deltas since then. Both are process-wide
	// counters, so under concurrent queries the deltas over-attribute shared
	// work — they bound the query's cost. Exact attribution comes from the
	// pprof labels the rpq layer applies around every run.
	cpu0   time.Duration
	alloc0 int64

	// trace holds the W3C trace identity (traceIdentity) of the originating
	// request, if any. Unlike Ring and Lint it is atomic: the query is
	// visible on /debug/rpq/queries the moment Begin returns, so SetTrace
	// can race a concurrent Snapshot.
	trace atomic.Value // traceIdentity

	phase      atomic.Value // string
	pops       atomic.Int64
	depth      atomic.Int64
	reach      atomic.Int64
	substs     atomic.Int64
	enumSubsts atomic.Int64
	workers    atomic.Int64

	// Ring, when non-nil, is the query's flight-recorder event ring; the
	// watchdog drains it into a diagnostic bundle.
	Ring *RingSink
	// Lint, when non-nil, holds the static-analysis findings for the query
	// (a JSON-marshalable value set by the public layer before the query
	// starts); the watchdog writes it into bundles as lint.json. Like Ring
	// it must be set before Watchdog.Arm and never mutated afterwards.
	Lint any
}

// traceIdentity is the request-trace pair published through an
// InflightQuery's trace field.
type traceIdentity struct {
	traceID, spanID string
}

// SetTrace attaches the originating request's trace identity to the handle;
// subsequent Snapshots report it. No-op when tc is invalid.
func (q *InflightQuery) SetTrace(tc TraceContext) {
	if q == nil || !tc.IsValid() {
		return
	}
	q.trace.Store(traceIdentity{traceID: tc.TraceIDString(), spanID: tc.SpanIDString()})
}

// Begin registers a query and returns its live handle. kind is the query
// form ("exist", "universal", "violations"), query a printable rendering of
// the pattern, algo the selected algorithm.
func (i *Inflight) Begin(kind, query, algo string) *InflightQuery {
	q := &InflightQuery{
		kind: kind, query: query, algo: algo, start: time.Now(), reg: i,
		cpu0: ProcessCPUTime(), alloc0: HeapAllocBytes(),
	}
	q.phase.Store("start")
	i.mu.Lock()
	i.next++
	q.id = i.next
	i.m[q.id] = q
	i.mu.Unlock()
	return q
}

// Done unregisters the query; its handle stays readable but no longer
// appears in Snapshots. Safe to call more than once.
func (q *InflightQuery) Done() {
	if q == nil || q.reg == nil {
		return
	}
	q.reg.mu.Lock()
	delete(q.reg.m, q.id)
	q.reg.mu.Unlock()
}

// ID returns the registry-unique id assigned at Begin.
func (q *InflightQuery) ID() int64 { return q.id }

// Start returns the registration time.
func (q *InflightQuery) Start() time.Time { return q.start }

// Update publishes one progress snapshot into the handle's atomic fields.
// Negative counter values leave the corresponding field untouched.
func (q *InflightQuery) Update(phase string, pops, depth, reach, substs, enumSubsts int64, workers int) {
	if q == nil {
		return
	}
	if phase != "" {
		q.phase.Store(phase)
	}
	if pops >= 0 {
		q.pops.Store(pops)
	}
	if depth >= 0 {
		q.depth.Store(depth)
	}
	if reach >= 0 {
		q.reach.Store(reach)
	}
	if substs >= 0 {
		q.substs.Store(substs)
	}
	if enumSubsts >= 0 {
		q.enumSubsts.Store(enumSubsts)
	}
	if workers > 0 {
		q.workers.Store(int64(workers))
	}
}

// QuerySnapshot is one point-in-time view of an in-flight query, shaped for
// JSON exposition on /debug/rpq/queries.
type QuerySnapshot struct {
	ID         int64   `json:"id"`
	Kind       string  `json:"kind"`
	Query      string  `json:"query"`
	Algo       string  `json:"algo"`
	StartedAt  string  `json:"started_at"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Phase      string  `json:"phase"`
	Pops       int64   `json:"pops"`
	Depth      int64   `json:"worklist_depth"`
	Reach      int64   `json:"reach_size"`
	Substs     int64   `json:"substs"`
	EnumSubsts int64   `json:"enum_substs"`
	Workers    int64   `json:"workers"`
	// CPUMS and AllocBytes are the process CPU time and heap allocation
	// since the query began — upper bounds under concurrent load (see the
	// handle's cpu0 field).
	CPUMS      float64 `json:"cpu_ms"`
	AllocBytes int64   `json:"alloc_bytes"`
	// TraceID/SpanID are the W3C trace identity of the originating request,
	// empty for library runs without one.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Snapshot reads the handle's current state.
func (q *InflightQuery) Snapshot() QuerySnapshot {
	phase, _ := q.phase.Load().(string)
	tid, _ := q.trace.Load().(traceIdentity)
	var cpuMS float64
	if q.cpu0 > 0 {
		if d := ProcessCPUTime() - q.cpu0; d > 0 {
			cpuMS = float64(d.Microseconds()) / 1e3
		}
	}
	var allocBytes int64
	if d := HeapAllocBytes() - q.alloc0; d > 0 {
		allocBytes = d
	}
	return QuerySnapshot{
		ID:         q.id,
		Kind:       q.kind,
		Query:      q.query,
		Algo:       q.algo,
		StartedAt:  q.start.UTC().Format(time.RFC3339Nano),
		ElapsedMS:  float64(time.Since(q.start).Microseconds()) / 1e3,
		Phase:      phase,
		Pops:       q.pops.Load(),
		Depth:      q.depth.Load(),
		Reach:      q.reach.Load(),
		Substs:     q.substs.Load(),
		EnumSubsts: q.enumSubsts.Load(),
		Workers:    q.workers.Load(),
		CPUMS:      cpuMS,
		AllocBytes: allocBytes,
		TraceID:    tid.traceID,
		SpanID:     tid.spanID,
	}
}

// Snapshots returns a snapshot of every registered query, ordered by id.
func (i *Inflight) Snapshots() []QuerySnapshot {
	i.mu.Lock()
	qs := make([]*InflightQuery, 0, len(i.m))
	for _, q := range i.m {
		qs = append(qs, q)
	}
	i.mu.Unlock()
	sort.Slice(qs, func(a, b int) bool { return qs[a].id < qs[b].id })
	out := make([]QuerySnapshot, len(qs))
	for j, q := range qs {
		out[j] = q.Snapshot()
	}
	return out
}

// Len returns the number of queries currently registered.
func (i *Inflight) Len() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.m)
}
