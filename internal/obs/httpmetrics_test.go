package obs

import (
	"strings"
	"testing"
	"time"
)

func TestStatusClass(t *testing.T) {
	for status, want := range map[int]string{
		200: "2xx", 201: "2xx", 301: "3xx", 404: "4xx", 429: "4xx",
		499: "4xx", 500: "5xx", 503: "5xx", 99: "0xx", 1000: "0xx",
	} {
		if got := StatusClass(status); got != want {
			t.Errorf("StatusClass(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestHTTPMetricsObserve(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, []SLO{{Route: "query", Objective: 0.999, LatencyThreshold: 50 * time.Millisecond}})

	m.Observe("query", 200, "exist", 10*time.Millisecond)
	m.Observe("query", 200, "exist", 100*time.Millisecond) // good status, too slow
	m.Observe("query", 500, "universal", 10*time.Millisecond)
	m.Observe("query", 429, "exist", time.Millisecond)
	m.Observe("stats", 200, "", time.Millisecond) // no SLO on this route

	snap := reg.Snapshot()
	for key, want := range map[string]int64{
		`rpq_http_requests_total{route="query",status="2xx",kind="exist"}`:     2,
		`rpq_http_requests_total{route="query",status="5xx",kind="universal"}`: 1,
		`rpq_http_requests_total{route="query",status="4xx",kind="exist"}`:     1,
		`rpq_http_requests_total{route="stats",status="2xx",kind="-"}`:         1,
		`rpq_http_slo_total{route="query"}`:                                    4,
		`rpq_http_slo_good{route="query"}`:                                     2, // the fast 200 and the fast 429
		`rpq_http_request_seconds{route="query"}_count`:                        4,
		`rpq_http_request_seconds{route="stats"}_count`:                        1,
	} {
		if got := snap[key]; got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	if _, ok := snap[`rpq_http_slo_total{route="stats"}`]; ok {
		t.Error("stats route grew SLO counters without an objective")
	}
}

// TestLabeledExposition renders labeled families and checks the exposition
// stays valid: one HELP/TYPE header per family (never per label combination)
// and label bodies merged correctly into quantile and bucket samples.
func TestLabeledExposition(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil)
	m.Observe("query", 200, "exist", 10*time.Millisecond)
	m.Observe("stats", 404, "", time.Millisecond)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE rpq_http_requests_total gauge\n",
		`rpq_http_requests_total{route="query",status="2xx",kind="exist"} 1` + "\n",
		`rpq_http_requests_total{route="stats",status="4xx",kind="-"} 1` + "\n",
		"# TYPE rpq_http_request_seconds summary\n",
		`rpq_http_request_seconds{route="query",quantile="0.5"} `,
		`rpq_http_request_seconds_sum{route="query"} `,
		`rpq_http_request_seconds_count{route="query"} 1` + "\n",
		"# TYPE rpq_http_request_seconds_hist histogram\n",
		`rpq_http_request_seconds_hist_bucket{route="query",le="+Inf"} 1` + "\n",
		`rpq_http_request_seconds_hist_count{route="stats"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Headers are per family: exactly one TYPE line even with two routes.
	if n := strings.Count(out, "# TYPE rpq_http_requests_total gauge"); n != 1 {
		t.Errorf("rpq_http_requests_total TYPE lines = %d, want 1", n)
	}
	if n := strings.Count(out, "# TYPE rpq_http_request_seconds summary"); n != 1 {
		t.Errorf("rpq_http_request_seconds TYPE lines = %d, want 1", n)
	}
	// No TYPE/HELP line may name a label body — that would be invalid
	// exposition syntax.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") && strings.Contains(line, "{") {
			t.Errorf("header line carries labels: %q", line)
		}
	}
}
