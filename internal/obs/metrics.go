package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Gauge is an atomically updated int64 metric, safe to write from a solver
// loop while the HTTP exposition reads it.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry names a set of gauges and latency histograms and renders them in
// the Prometheus text exposition format. Registration is cheap and
// idempotent by name.
type Registry struct {
	mu     sync.Mutex
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{gauges: map[string]*Gauge{}, hists: map[string]*Histogram{}, help: map[string]string{}}
}

// defaultRegistry backs Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry served by Serve when no
// explicit registry is given.
func Default() *Registry { return defaultRegistry }

// Gauge returns the gauge registered under name, creating it (with the
// given help text) on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.help[name] = help
	return g
}

// MetricKey renders a metric family plus ordered label pairs ("k1", "v1",
// "k2", "v2", ...) in the canonical form family{k1="v1",k2="v2"} used as the
// registry/Snapshot key of one label combination. With no pairs it returns
// the family unchanged. Callers must pass pairs in a fixed order — the key
// is a plain string, so the same labels in a different order name a
// different metric.
func MetricKey(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(kv[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// splitMetricName splits a registry key into its family and label body (the
// text inside the braces, "" when unlabeled).
func splitMetricName(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels renders fam plus up to two label bodies as one sample name.
func joinLabels(fam, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return fam
	case labels == "":
		return fam + "{" + extra + "}"
	case extra == "":
		return fam + "{" + labels + "}"
	}
	return fam + "{" + labels + "," + extra + "}"
}

// LabeledGauge returns the gauge for one label combination of a metric
// family, creating it on first use. The help text is attached to the family:
// WritePrometheus renders one HELP/TYPE header per family followed by every
// label combination's sample, and Snapshot exposes each combination under
// its MetricKey, so labeled families flow into the tsdb unchanged.
func (r *Registry) LabeledGauge(family, help string, kv ...string) *Gauge {
	name := MetricKey(family, kv...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.help[family] = help
	return g
}

// LabeledHistogram is LabeledGauge for latency histograms: one histogram per
// label combination, rendered with the family's labels merged into each
// quantile/bucket sample.
func (r *Registry) LabeledHistogram(family, help string, kv ...string) *Histogram {
	name := MetricKey(family, kv...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	r.help[family] = help
	return h
}

// Histogram returns the latency histogram registered under name, creating
// it (with the given help text) on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	r.hists[name] = h
	r.help[name] = help
	return h
}

// Unregister removes the gauge or histogram registered under name, so it
// disappears from Snapshot and the Prometheus exposition. Holders of the
// pointer can keep updating it harmlessly; re-registering the name creates a
// fresh metric. Reports whether the name was registered.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, okG := r.gauges[name]
	_, okH := r.hists[name]
	delete(r.gauges, name)
	delete(r.hists, name)
	delete(r.help, name)
	return okG || okH
}

// Reset removes every registered gauge — long-lived server processes call
// it between runs so per-run metrics (e.g. per-worker gauges) don't
// accumulate indefinitely.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.help = map[string]string{}
}

// Snapshot returns the current name → value map, for expvar publication.
// Histograms contribute <name>_count, <name>_sum_us, and the p50/p95/p99
// bucket-midpoint estimates in microseconds.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges)+5*len(r.hists))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_count"] = h.Count()
		out[name+"_sum_us"] = h.Sum().Microseconds()
		out[name+"_p50_us"] = h.Quantile(0.50).Microseconds()
		out[name+"_p95_us"] = h.Quantile(0.95).Microseconds()
		out[name+"_p99_us"] = h.Quantile(0.99).Microseconds()
	}
	return out
}

// WritePrometheus renders every gauge and histogram in the Prometheus text
// exposition format (# HELP / # TYPE lines followed by the samples), sorted
// by name. Labeled families (LabeledGauge/LabeledHistogram) render one
// HELP/TYPE header followed by every label combination's sample — sorted
// names keep a family's combinations contiguous, since '{' sorts after every
// metric-name character. Histograms are rendered as summaries:
// quantile-labelled samples in seconds plus <name>_sum and <name>_count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct {
		name, fam, labels, help string
		value                   int64
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		fam, labels := splitMetricName(name)
		help := r.help[fam]
		if help == "" {
			help = r.help[name]
		}
		rows = append(rows, row{name, fam, labels, help, r.gauges[name].Value()})
	}
	hnames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	type hrow struct {
		fam, labels, help string
		p50, p95, p99     float64
		sum               float64
		count             int64
		buckets           [histBuckets]int64
		exemplars         [histBuckets]*Exemplar
	}
	hrows := make([]hrow, 0, len(hnames))
	for _, name := range hnames {
		h := r.hists[name]
		counts, count, sumUS := h.snapshot()
		fam, labels := splitMetricName(name)
		help := r.help[fam]
		if help == "" {
			help = r.help[name]
		}
		hr := hrow{
			fam: fam, labels: labels, help: help,
			p50: h.Quantile(0.50).Seconds(), p95: h.Quantile(0.95).Seconds(),
			p99: h.Quantile(0.99).Seconds(),
			sum: float64(sumUS) / 1e6, count: count, buckets: counts,
		}
		for i := range hr.exemplars {
			hr.exemplars[i] = h.BucketExemplar(i)
		}
		hrows = append(hrows, hr)
	}
	r.mu.Unlock()
	lastFam := ""
	for _, rw := range rows {
		if rw.fam != lastFam {
			if rw.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", rw.fam, rw.help)
			}
			fmt.Fprintf(w, "# TYPE %s gauge\n", rw.fam)
			lastFam = rw.fam
		}
		fmt.Fprintf(w, "%s %d\n", rw.name, rw.value)
	}
	lastFam = ""
	for _, hw := range hrows {
		if hw.fam != lastFam {
			if hw.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", hw.fam, hw.help)
			}
			fmt.Fprintf(w, "# TYPE %s summary\n", hw.fam)
			lastFam = hw.fam
		}
		fmt.Fprintf(w, "%s %g\n", joinLabels(hw.fam, hw.labels, `quantile="0.5"`), hw.p50)
		fmt.Fprintf(w, "%s %g\n", joinLabels(hw.fam, hw.labels, `quantile="0.95"`), hw.p95)
		fmt.Fprintf(w, "%s %g\n", joinLabels(hw.fam, hw.labels, `quantile="0.99"`), hw.p99)
		fmt.Fprintf(w, "%s %g\n", joinLabels(hw.fam+"_sum", hw.labels, ""), hw.sum)
		fmt.Fprintf(w, "%s %d\n", joinLabels(hw.fam+"_count", hw.labels, ""), hw.count)
	}
	// The same data again as native Prometheus histograms with cumulative le
	// buckets, under a distinct <name>_hist family: the summary above already
	// claims <name>_sum/<name>_count, and a metric cannot be both types. The
	// bucket edges are the histogram's own log2 bucket upper bounds, 2^(i+1)
	// microseconds expressed in seconds; empty tail buckets are elided.
	lastFam = ""
	for _, hw := range hrows {
		fam := hw.fam + "_hist"
		if fam != lastFam {
			if hw.help != "" {
				fmt.Fprintf(w, "# HELP %s %s (cumulative le buckets)\n", fam, hw.help)
			}
			fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
			lastFam = fam
		}
		top := 0
		for i, c := range hw.buckets {
			if c > 0 {
				top = i
			}
		}
		var cum int64
		for i := 0; i <= top; i++ {
			cum += hw.buckets[i]
			le := float64(int64(1)<<uint(i+1)) / 1e6
			fmt.Fprintf(w, "%s %d", joinLabels(fam+"_bucket", hw.labels, fmt.Sprintf("le=%q", strconv.FormatFloat(le, 'g', -1, 64))), cum)
			// OpenMetrics exemplar: the most recent trace ID that landed in
			// this bucket, so a slow bucket jumps straight to its trace (and
			// from there to the pinned profile slice).
			if e := hw.exemplars[i]; e != nil {
				fmt.Fprintf(w, " # {trace_id=%q} %g %d.%03d",
					e.TraceID, e.Value.Seconds(), e.Time.Unix(), e.Time.Nanosecond()/1e6)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s %d\n", joinLabels(fam+"_bucket", hw.labels, `le="+Inf"`), hw.count)
		fmt.Fprintf(w, "%s %g\n", joinLabels(fam+"_sum", hw.labels, ""), hw.sum)
		fmt.Fprintf(w, "%s %d\n", joinLabels(fam+"_count", hw.labels, ""), hw.count)
	}
}

// WriteBuildInfo emits the rpq_build_info gauge: a constant-1 sample whose
// labels carry the Go version, module path, VCS revision, and whether the
// working tree was modified at build time. Binaries built without module
// info (e.g. plain `go build file.go`) emit only the go_version label.
func WriteBuildInfo(w io.Writer) {
	goVersion, path, revision, modified := runtime.Version(), "", "", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		path = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
	}
	fmt.Fprintf(w, "# HELP rpq_build_info build metadata of the running binary\n")
	fmt.Fprintf(w, "# TYPE rpq_build_info gauge\n")
	fmt.Fprintf(w, "rpq_build_info{go_version=%q,path=%q,revision=%q,modified=%q} 1\n",
		goVersion, path, revision, modified)
}

// SolverGauges is the live view of a running query that the solvers sample
// every few hundred worklist pops: current worklist depth, reach-set size,
// interned substitutions, and approximate table bytes, plus monotonic
// query/slow-query totals maintained by the rpq layer.
type SolverGauges struct {
	WorklistDepth *Gauge
	ReachSize     *Gauge
	Substs        *Gauge
	TableBytes    *Gauge
	EnumSubsts    *Gauge
	Queries       *Gauge
	SlowQueries   *Gauge

	// Resource-attribution totals maintained by the rpq layer: CPU time and
	// heap bytes attributed to completed queries, cumulative since process
	// start.
	CPUTotalUS *Gauge
	AllocTotal *Gauge

	// Latency histograms maintained by the rpq layer: end-to-end query wall
	// time and the per-phase breakdown reported in Stats.Phases.
	QueryHist   *Histogram
	CompileHist *Histogram
	DomainsHist *Histogram
	SolveHist   *Histogram
	EnumHist    *Histogram

	// reg is where Worker registers per-worker gauges on demand; nil falls
	// back to the default registry.
	reg     *Registry
	mu      sync.Mutex
	workers map[int]*WorkerGauges
}

// WorkerGauges is the live view of one parallel-solver worker: its local
// queue depth, triples stolen from other workers, and the count and total
// size of cross-worker push batches it has sent.
type WorkerGauges struct {
	QueueDepth  *Gauge
	Steals      *Gauge
	Batches     *Gauge
	BatchedMsgs *Gauge
}

// Worker returns the gauge set for parallel-solver worker i, registering
// rpq_worker_<i>_* gauges on first use. Safe for concurrent use.
func (s *SolverGauges) Worker(i int) *WorkerGauges {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if wg, ok := s.workers[i]; ok {
		return wg
	}
	r := s.reg
	if r == nil {
		r = Default()
	}
	p := fmt.Sprintf("rpq_worker_%d_", i)
	wg := &WorkerGauges{
		QueueDepth:  r.Gauge(p+"queue_depth", "current worklist depth of this parallel-solver worker"),
		Steals:      r.Gauge(p+"steals_total", "triples this worker stole from other workers' queues"),
		Batches:     r.Gauge(p+"batches_total", "cross-worker push batches this worker sent"),
		BatchedMsgs: r.Gauge(p+"batched_msgs_total", "cross-worker push messages this worker sent"),
	}
	if s.workers == nil {
		s.workers = map[int]*WorkerGauges{}
	}
	s.workers[i] = wg
	return wg
}

// ReleaseWorkers unregisters the rpq_worker_<i>_* gauges of workers with
// index >= active. The parallel solvers call it at the end of a run with
// the run's worker count, so a long-lived process that re-runs with fewer
// workers does not keep exposing stale gauges from earlier, wider runs.
func (s *SolverGauges) ReleaseWorkers(active int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.reg
	if r == nil {
		r = Default()
	}
	for i, wg := range s.workers {
		if i < active || wg == nil {
			continue
		}
		p := fmt.Sprintf("rpq_worker_%d_", i)
		r.Unregister(p + "queue_depth")
		r.Unregister(p + "steals_total")
		r.Unregister(p + "batches_total")
		r.Unregister(p + "batched_msgs_total")
		delete(s.workers, i)
	}
}

// NewSolverGauges registers the solver gauge set in r (the default registry
// when nil) under the rpq_ metric namespace.
func NewSolverGauges(r *Registry) *SolverGauges {
	if r == nil {
		r = Default()
	}
	return &SolverGauges{
		reg:           r,
		WorklistDepth: r.Gauge("rpq_worklist_depth", "current solver worklist depth"),
		ReachSize:     r.Gauge("rpq_reach_size", "triples in the reach set of the running query"),
		Substs:        r.Gauge("rpq_substs_interned", "distinct substitutions interned by the running query"),
		TableBytes:    r.Gauge("rpq_table_bytes", "approximate bytes in the reach-set and substitution tables"),
		EnumSubsts:    r.Gauge("rpq_enum_substs", "full substitutions enumerated so far (enumeration/hybrid)"),
		Queries:       r.Gauge("rpq_queries_total", "queries completed since process start"),
		SlowQueries:   r.Gauge("rpq_slow_queries_total", "queries exceeding the slow-query threshold"),
		CPUTotalUS:    r.Gauge("rpq_cpu_us_total", "process CPU time attributed to completed queries, microseconds"),
		AllocTotal:    r.Gauge("rpq_alloc_bytes_total", "heap bytes allocated during completed queries"),
		QueryHist:     r.Histogram("rpq_query_seconds", "end-to-end query latency"),
		CompileHist:   r.Histogram("rpq_phase_compile_seconds", "pattern compilation latency per query"),
		DomainsHist:   r.Histogram("rpq_phase_domains_seconds", "parameter-domain computation latency per query"),
		SolveHist:     r.Histogram("rpq_phase_solve_seconds", "worklist solve latency per query"),
		EnumHist:      r.Histogram("rpq_phase_enumerate_seconds", "enumeration-phase latency per query"),
	}
}

// Sample stores one live snapshot; any negative argument leaves the
// corresponding gauge untouched, letting callers update a subset.
func (s *SolverGauges) Sample(worklist, reach, substs, bytes int64) {
	if s == nil {
		return
	}
	if worklist >= 0 {
		s.WorklistDepth.Set(worklist)
	}
	if reach >= 0 {
		s.ReachSize.Set(reach)
	}
	if substs >= 0 {
		s.Substs.Set(substs)
	}
	if bytes >= 0 {
		s.TableBytes.Set(bytes)
	}
}
