//go:build !unix

package obs

import "time"

// ProcessCPUTime reports 0 on platforms without getrusage(2); CPU
// attribution fields stay zero there while everything else keeps working.
func ProcessCPUTime() time.Duration { return 0 }
