package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakePinner implements ProfilePinner without a real capture loop.
type fakePinner struct {
	cpu    []byte
	id     int64
	ok     bool
	reason string
	calls  int
}

func (f *fakePinner) PinActive(reason string) ([]byte, int64, bool) {
	f.calls++
	f.reason = reason
	return f.cpu, f.id, f.ok
}

func TestWatchdogDumpPinsProfile(t *testing.T) {
	pinner := &fakePinner{cpu: []byte("fake-pprof-bytes"), id: 7, ok: true}
	wd := &Watchdog{Dir: t.TempDir(), Profiler: pinner}
	reg := NewInflight()
	q := reg.Begin("exist", "_* use(x)", "basic")

	path, err := wd.Dump(q, "slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pinner.calls != 1 || pinner.reason != "slow" {
		t.Fatalf("pinner called %d times with reason %q", pinner.calls, pinner.reason)
	}

	b, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.ProfileWindow != 7 {
		t.Fatalf("meta.profile_window = %d, want 7", b.Meta.ProfileWindow)
	}
	if !bytes.Equal(b.Profile, pinner.cpu) {
		t.Fatalf("bundle profile = %q", b.Profile)
	}
	if _, err := os.Stat(filepath.Join(path, "profile.pb.gz")); err != nil {
		t.Fatalf("profile.pb.gz missing: %v", err)
	}
}

func TestWatchdogDumpPinnerEmpty(t *testing.T) {
	// A pinner with nothing captured must not fail the dump or write the file.
	pinner := &fakePinner{ok: false}
	wd := &Watchdog{Dir: t.TempDir(), Profiler: pinner}
	reg := NewInflight()
	q := reg.Begin("exist", "q", "basic")

	path, err := wd.Dump(q, "hung", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.ProfileWindow != 0 || b.Profile != nil {
		t.Fatalf("empty pinner produced profile: meta=%d bytes=%d", b.Meta.ProfileWindow, len(b.Profile))
	}
}

func TestHistogramExemplars(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Millisecond) // untraced: no exemplar
	h.ObserveTrace(3*time.Millisecond, "aaaa0000aaaa0000aaaa0000aaaa0000")
	h.ObserveTrace(900*time.Millisecond, "bbbb1111bbbb1111bbbb1111bbbb1111")
	h.ObserveTrace(950*time.Millisecond, "cccc2222cccc2222cccc2222cccc2222")

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v", ex)
	}
	// Slowest bucket first; the later observation in a bucket wins.
	if ex[0].TraceID != "cccc2222cccc2222cccc2222cccc2222" {
		t.Fatalf("top exemplar = %+v", ex[0])
	}
	if ex[1].TraceID != "aaaa0000aaaa0000aaaa0000aaaa0000" {
		t.Fatalf("second exemplar = %+v", ex[1])
	}
	if ex[0].Value != 950*time.Millisecond || ex[0].ValueMS != 950 {
		t.Fatalf("exemplar value = %+v", ex[0])
	}
}

func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.LabeledHistogram("rpq_http_request_seconds", "latency", "route", "query")
	h.ObserveTrace(10*time.Millisecond, "dddd3333dddd3333dddd3333dddd3333")
	h.Observe(20 * time.Microsecond)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	// The traced bucket line carries an OpenMetrics exemplar...
	want := `# {trace_id="dddd3333dddd3333dddd3333dddd3333"} 0.01`
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "_hist_bucket") && strings.Contains(line, want) {
			found = true
			if !strings.Contains(line, `route="query"`) {
				t.Fatalf("exemplar line lost its labels: %s", line)
			}
		}
	}
	if !found {
		t.Fatalf("no exemplar in exposition:\n%s", out)
	}
	// ...and untraced families don't grow exemplars.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "#") && strings.Contains(line, "trace_id") &&
			!strings.Contains(line, "dddd3333") {
			t.Fatalf("unexpected exemplar: %s", line)
		}
	}
}
