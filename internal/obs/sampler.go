package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSampler periodically reads a fixed set of runtime/metrics samples —
// live heap, cumulative allocation, goroutine count, GC cycles and pause
// quantiles, scheduler latency quantiles — into gauges of a Registry, so the
// runtime's behavior shows up in /metrics, the time-series store, and the
// dashboard next to the query-engine metrics. All reads go through
// runtime/metrics: none of them stop the world, unlike the
// runtime.ReadMemStats sampling this replaces.
//
// A sampler is created stopped; Start launches the sampling goroutine and
// Stop terminates it and waits for it to exit (no goroutine outlives Stop).
// SampleOnce reads one sample synchronously and is what the loop calls.
type RuntimeSampler struct {
	interval time.Duration

	goroutines *Gauge
	heapLive   *Gauge
	heapAllocs *Gauge
	gcCycles   *Gauge
	gcPauseP50 *Gauge
	gcPauseP99 *Gauge
	schedP50   *Gauge
	schedP99   *Gauge

	// samples is the prepared runtime/metrics batch, read in one call.
	samples []metrics.Sample

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// Offsets into RuntimeSampler.samples; the order matches newRuntimeSamples.
const (
	smGoroutines = iota
	smHeapLive
	smHeapAllocs
	smGCCycles
	smGCPauses
	smSchedLat
	smCount
)

func newRuntimeSamples() []metrics.Sample {
	names := [smCount]string{
		smGoroutines: "/sched/goroutines:goroutines",
		smHeapLive:   "/memory/classes/heap/objects:bytes",
		smHeapAllocs: heapAllocsMetric,
		smGCCycles:   "/gc/cycles/total:gc-cycles",
		smGCPauses:   "/sched/pauses/total/gc:seconds",
		smSchedLat:   "/sched/latencies:seconds",
	}
	s := make([]metrics.Sample, smCount)
	for i, n := range names {
		s[i].Name = n
	}
	// Older runtimes expose GC pauses under the pre-1.21 name; probe once
	// and fall back so the sampler works on any supported toolchain.
	metrics.Read(s)
	if s[smGCPauses].Value.Kind() == metrics.KindBad {
		s[smGCPauses].Name = "/gc/pauses:seconds"
	}
	return s
}

// NewRuntimeSampler registers the go_* runtime gauges in r (the default
// registry when nil) and returns a sampler reading them every interval
// (default 1s when interval <= 0) once started.
func NewRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	if r == nil {
		r = Default()
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &RuntimeSampler{
		interval:   interval,
		goroutines: r.Gauge("go_goroutines", "live goroutines in the process"),
		heapLive:   r.Gauge("go_heap_live_bytes", "bytes of live heap objects (runtime/metrics /memory/classes/heap/objects)"),
		heapAllocs: r.Gauge("go_heap_allocs_bytes_total", "cumulative bytes allocated on the heap since process start"),
		gcCycles:   r.Gauge("go_gc_cycles_total", "completed GC cycles since process start"),
		gcPauseP50: r.Gauge("go_gc_pause_p50_us", "median stop-the-world GC pause since process start, microseconds"),
		gcPauseP99: r.Gauge("go_gc_pause_p99_us", "99th-percentile stop-the-world GC pause since process start, microseconds"),
		schedP50:   r.Gauge("go_sched_latency_p50_us", "median goroutine scheduling latency since process start, microseconds"),
		schedP99:   r.Gauge("go_sched_latency_p99_us", "99th-percentile goroutine scheduling latency since process start, microseconds"),
		samples:    newRuntimeSamples(),
	}
}

// Interval returns the sampling cadence.
func (s *RuntimeSampler) Interval() time.Duration { return s.interval }

// SampleOnce reads the runtime metrics once and stores them in the gauges.
// Safe to call concurrently with a running sampler (reads are serialized).
func (s *RuntimeSampler) SampleOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	if v := s.samples[smGoroutines]; v.Value.Kind() == metrics.KindUint64 {
		s.goroutines.Set(int64(v.Value.Uint64()))
	}
	if v := s.samples[smHeapLive]; v.Value.Kind() == metrics.KindUint64 {
		s.heapLive.Set(int64(v.Value.Uint64()))
	}
	if v := s.samples[smHeapAllocs]; v.Value.Kind() == metrics.KindUint64 {
		s.heapAllocs.Set(int64(v.Value.Uint64()))
	}
	if v := s.samples[smGCCycles]; v.Value.Kind() == metrics.KindUint64 {
		s.gcCycles.Set(int64(v.Value.Uint64()))
	}
	if v := s.samples[smGCPauses]; v.Value.Kind() == metrics.KindFloat64Histogram {
		h := v.Value.Float64Histogram()
		s.gcPauseP50.Set(histQuantileUS(h, 0.50))
		s.gcPauseP99.Set(histQuantileUS(h, 0.99))
	}
	if v := s.samples[smSchedLat]; v.Value.Kind() == metrics.KindFloat64Histogram {
		h := v.Value.Float64Histogram()
		s.schedP50.Set(histQuantileUS(h, 0.50))
		s.schedP99.Set(histQuantileUS(h, 0.99))
	}
}

// histQuantileUS estimates the q-th quantile of a runtime/metrics
// seconds-valued histogram, in microseconds. The runtime's histograms are
// cumulative since process start; bucket boundaries may include ±Inf, which
// are clamped to the nearest finite neighbor.
func histQuantileUS(h *metrics.Float64Histogram, q float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			// Bucket i spans Buckets[i] .. Buckets[i+1]; report the upper
			// bound (conservative), substituting the finite neighbor for
			// an infinite edge.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, +1) {
				hi = h.Buckets[i]
			}
			if math.IsInf(hi, -1) || math.IsNaN(hi) {
				return 0
			}
			return int64(hi * 1e6)
		}
	}
	return 0
}

// Start launches the sampling goroutine (idempotent). The first sample is
// taken immediately, then every interval.
func (s *RuntimeSampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()

	s.SampleOnce()
	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.SampleOnce()
			}
		}
	}()
}

// Stop terminates the sampling goroutine and waits for it to exit; it is
// idempotent and a no-op on a never-started sampler.
func (s *RuntimeSampler) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}
