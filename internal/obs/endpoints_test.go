package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTestServer brings up the full endpoint set on an ephemeral port with
// a fast sampler and time-series store, and tears everything down with the
// test.
func startTestServer(t *testing.T) (base string, reg *Registry, ts *TimeSeries) {
	t.Helper()
	reg = NewRegistry()
	sampler := NewRuntimeSampler(reg, 5*time.Millisecond)
	ts = NewTimeSeries(reg, TimeSeriesOptions{Interval: 5 * time.Millisecond, Retention: time.Second})
	ts.WatchInflight(DefaultInflight())
	srv, err := ServeWith("127.0.0.1:0", ServeOptions{Registry: reg, TimeSeries: ts})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	sampler.Start()
	ts.Start()
	t.Cleanup(func() {
		ts.Stop()
		sampler.Stop()
		srv.Close()
	})
	return "http://" + srv.Addr, reg, ts
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestEndpointsUnderConcurrentLoad hammers every endpoint while synthetic
// queries register, update, and unregister concurrently; run with -race
// this doubles as the data-race check for the whole exposition path.
func TestEndpointsUnderConcurrentLoad(t *testing.T) {
	base, reg, _ := startTestServer(t)
	g := NewSolverGauges(reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := DefaultInflight().Begin("exist", "load-test", "memo")
				q.Update("solve", int64(i), 4, 9, 2, 0, w+1)
				g.Queries.Add(1)
				g.QueryHist.Observe(time.Duration(i%1000) * time.Microsecond)
				g.Sample(int64(i%10), int64(i), int64(i%5), int64(i*10))
				q.Done()
			}
		}(w)
	}

	for i := 0; i < 20; i++ {
		for _, path := range []string{"/metrics", "/debug/rpq/queries", "/debug/rpq/ts", "/debug/rpq/dash"} {
			code, body := httpGet(t, base+path)
			if code != http.StatusOK {
				t.Fatalf("%s: HTTP %d", path, code)
			}
			if len(body) == 0 {
				t.Fatalf("%s: empty body", path)
			}
		}
	}
	close(stop)
	wg.Wait()

	_, metricsBody := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"rpq_queries_total",
		"# TYPE rpq_query_seconds summary",
		"# TYPE rpq_query_seconds_hist histogram",
		"rpq_query_seconds_hist_bucket{le=\"+Inf\"}",
		"rpq_cpu_us_total",
		"rpq_alloc_bytes_total",
		"rpq_build_info{",
		"go_goroutines",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	_, tsBody := httpGet(t, base+"/debug/rpq/ts")
	var doc struct {
		Schema string              `json:"schema"`
		Points int                 `json:"points"`
		Stamps []int64             `json:"timestamps_ms"`
		Series map[string][]*int64 `json:"series"`
	}
	if err := json.Unmarshal([]byte(tsBody), &doc); err != nil {
		t.Fatalf("/debug/rpq/ts: %v", err)
	}
	if doc.Schema != TSDBSchema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if doc.Points != len(doc.Stamps) || doc.Points == 0 {
		t.Fatalf("points = %d, stamps = %d", doc.Points, len(doc.Stamps))
	}
	for name, col := range doc.Series {
		if len(col) != doc.Points {
			t.Fatalf("series %s: %d entries for %d points", name, len(col), doc.Points)
		}
	}
	if _, ok := doc.Series["rpq_inflight_queries"]; !ok {
		t.Error("rpq_inflight_queries series missing")
	}
}

func TestTSEndpointDisabled(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", ServeOptions{Registry: NewRegistry()})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	defer srv.Close()
	code, body := httpGet(t, "http://"+srv.Addr+"/debug/rpq/ts")
	if code != http.StatusNotImplemented {
		t.Fatalf("disabled /debug/rpq/ts: HTTP %d, want 501", code)
	}
	if !strings.Contains(body, "not enabled") {
		t.Fatalf("unexpected body %q", body)
	}
	// The dashboard still serves; it degrades client-side.
	if code, _ := httpGet(t, "http://"+srv.Addr+"/debug/rpq/dash"); code != http.StatusOK {
		t.Fatalf("/debug/rpq/dash: HTTP %d", code)
	}
}

func TestServerShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewRegistry()
	sampler := NewRuntimeSampler(reg, time.Millisecond)
	ts := NewTimeSeries(reg, TimeSeriesOptions{Interval: time.Millisecond, Retention: 100 * time.Millisecond})
	srv, err := ServeWith("127.0.0.1:0", ServeOptions{Registry: reg, TimeSeries: ts})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	sampler.Start()
	ts.Start()
	if code, _ := httpGet(t, "http://"+srv.Addr+"/metrics"); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	ts.Stop()
	sampler.Stop()
	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines: %d before, %d after shutdown", before, n)
	}
}
