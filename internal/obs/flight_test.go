package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zero quantiles")
	}
	// 90 samples at ~100µs, 10 at ~10ms: p50 lands in the 64–128µs bucket,
	// p99 in the 8.192–16.384ms bucket.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if p50 := h.Quantile(0.50); p50 < 64*time.Microsecond || p50 > 128*time.Microsecond {
		t.Fatalf("p50 = %v, want within the 64–128µs bucket", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 8*time.Millisecond || p99 > 17*time.Millisecond {
		t.Fatalf("p99 = %v, want within the 8.192–16.384ms bucket", p99)
	}
	wantSum := 90*100*time.Microsecond + 10*10*time.Millisecond
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramConcurrency(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
				h.Quantile(0.95)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rpq_test_seconds", "test latency")
	h.Observe(2 * time.Millisecond)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE rpq_test_seconds summary",
		`rpq_test_seconds{quantile="0.5"}`,
		`rpq_test_seconds{quantile="0.99"}`,
		"rpq_test_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	snap := r.Snapshot()
	if snap["rpq_test_seconds_count"] != 1 {
		t.Fatalf("snapshot count = %d, want 1", snap["rpq_test_seconds_count"])
	}
	if snap["rpq_test_seconds_p50_us"] <= 0 {
		t.Fatal("snapshot p50 missing")
	}

	if !r.Unregister("rpq_test_seconds") {
		t.Fatal("Unregister did not report the histogram")
	}
	if _, ok := r.Snapshot()["rpq_test_seconds_count"]; ok {
		t.Fatal("histogram survived Unregister")
	}
}

func TestInflightLifecycle(t *testing.T) {
	reg := NewInflight()
	q := reg.Begin("exist", "(!def(x))* use(x)", "memo")
	if reg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", reg.Len())
	}
	q.Update("solve", 512, 17, 900, 12, -1, 4)
	snaps := reg.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("Snapshots = %d entries, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Kind != "exist" || s.Algo != "memo" || s.Phase != "solve" {
		t.Fatalf("snapshot identity wrong: %+v", s)
	}
	if s.Pops != 512 || s.Depth != 17 || s.Reach != 900 || s.Substs != 12 || s.Workers != 4 {
		t.Fatalf("snapshot counters wrong: %+v", s)
	}
	if s.EnumSubsts != 0 {
		t.Fatalf("negative update should leave enum_substs at 0, got %d", s.EnumSubsts)
	}
	q.Done()
	q.Done() // idempotent
	if reg.Len() != 0 {
		t.Fatalf("Len after Done = %d, want 0", reg.Len())
	}
}

func TestWatchdogDumpAndLoad(t *testing.T) {
	dir := t.TempDir()
	var notified string
	wd := &Watchdog{Dir: dir, OnBundle: func(p string) { notified = p }}

	reg := NewInflight()
	q := reg.Begin("exist", "_* use(x)", "basic")
	q.Ring = NewRingSink(8)
	for i := 0; i < 12; i++ { // overflow the ring: only the last 8 survive
		q.Ring.Emit(Ev(KCounter, "pops", int64(i)))
	}
	q.Update("solve", 12, 3, 40, 5, -1, 1)

	path, err := wd.Dump(q, "deadline", map[string]int{"visits": 40})
	if err != nil {
		t.Fatal(err)
	}
	if notified != path {
		t.Fatalf("OnBundle got %q, want %q", notified, path)
	}

	b, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.Schema != BundleSchema || b.Meta.Reason != "deadline" {
		t.Fatalf("meta = %+v", b.Meta)
	}
	if b.Meta.Query.Pops != 12 || b.Meta.Query.Phase != "solve" {
		t.Fatalf("bundle snapshot = %+v", b.Meta.Query)
	}
	if len(b.Events) != 8 || b.Meta.RingTotal != 12 {
		t.Fatalf("events = %d (ring total %d), want 8 retained of 12", len(b.Events), b.Meta.RingTotal)
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Fatal("goroutines.txt missing stack dump")
	}
	if b.Explain == nil || b.Explain["visits"] != float64(40) {
		t.Fatalf("explain.json = %v", b.Explain)
	}
	if _, err := os.Stat(filepath.Join(path, "heap.pprof")); err != nil {
		t.Fatalf("heap profile missing: %v", err)
	}
}

func TestWatchdogPrune(t *testing.T) {
	dir := t.TempDir()
	wd := &Watchdog{Dir: dir, MaxBundles: 2}
	reg := NewInflight()
	for i := 0; i < 4; i++ {
		q := reg.Begin("exist", "p", "basic")
		if _, err := wd.Dump(q, "slow", nil); err != nil {
			t.Fatal(err)
		}
		q.Done()
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d bundles kept, want 2", len(entries))
	}
}

func TestWatchdogArm(t *testing.T) {
	dir := t.TempDir()
	fired := make(chan string, 1)
	wd := &Watchdog{Dir: dir, Hung: 10 * time.Millisecond, OnBundle: func(p string) { fired <- p }}
	reg := NewInflight()

	// Timer fires for a query that outlives Hung.
	q := reg.Begin("exist", "p", "basic")
	stop := wd.Arm(q)
	select {
	case p := <-fired:
		if b, err := LoadBundle(p); err != nil || b.Meta.Reason != "hung" {
			t.Fatalf("bundle %q load: %v (reason %q)", p, err, b.Meta.Reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hung timer never fired")
	}
	stop()
	q.Done()

	// Stopped in time: no bundle.
	q2 := reg.Begin("exist", "p2", "basic")
	stop2 := wd.Arm(q2)
	stop2()
	q2.Done()
	select {
	case p := <-fired:
		t.Fatalf("stopped timer still dumped %q", p)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestQueriesEndpoint(t *testing.T) {
	srv, err := Serve("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	q := DefaultInflight().Begin("universal", "(a b)*", "enumeration")
	q.Update("enumerate", -1, -1, -1, -1, 7, 1)
	defer q.Done()

	resp, err := http.Get("http://" + srv.Addr + "/debug/rpq/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var body struct {
		Queries []QuerySnapshot `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range body.Queries {
		if s.Kind == "universal" && s.Query == "(a b)*" && s.EnumSubsts == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("in-flight query missing from endpoint: %+v", body.Queries)
	}
}

func TestQueriesEndpointEmpty(t *testing.T) {
	srv, err := Serve("localhost:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/rpq/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var body struct {
		Queries []QuerySnapshot `json:"queries"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	// No in-flight queries from this test; the key must still decode as a
	// (possibly empty) array, never null.
	if !strings.Contains(string(raw), `"queries"`) {
		t.Fatalf("missing queries key: %s", raw)
	}
}

func TestSlowLogBundleField(t *testing.T) {
	var b strings.Builder
	l := NewSlowLog(&b, 0)
	l.ObserveDetail("exist", "p", time.Second, 3, nil, SlowDetail{Bundle: "/tmp/x/bundle-1"})
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["bundle"] != "/tmp/x/bundle-1" {
		t.Fatalf("bundle field = %v", rec["bundle"])
	}

	b.Reset()
	l2 := NewSlowLog(&b, 0)
	l2.Observe("exist", "p", time.Second, 3, nil)
	if strings.Contains(b.String(), "bundle") {
		t.Fatalf("empty bundle should be omitted: %s", b.String())
	}
}

func TestInflightConcurrency(t *testing.T) {
	reg := NewInflight()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := reg.Begin("exist", fmt.Sprintf("q%d", w), "memo")
				q.Update("solve", int64(i), -1, -1, -1, -1, 1)
				reg.Snapshots()
				q.Done()
			}
		}(w)
	}
	wg.Wait()
	if reg.Len() != 0 {
		t.Fatalf("Len = %d after all Done", reg.Len())
	}
}
