package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerSampleOnce(t *testing.T) {
	r := NewRegistry()
	s := NewRuntimeSampler(r, time.Second)
	s.SampleOnce()
	snap := r.Snapshot()
	if snap["go_goroutines"] <= 0 {
		t.Fatalf("go_goroutines = %d, want > 0", snap["go_goroutines"])
	}
	if snap["go_heap_live_bytes"] <= 0 {
		t.Fatalf("go_heap_live_bytes = %d, want > 0", snap["go_heap_live_bytes"])
	}
	if snap["go_heap_allocs_bytes_total"] <= 0 {
		t.Fatalf("go_heap_allocs_bytes_total = %d, want > 0", snap["go_heap_allocs_bytes_total"])
	}
	// The allocs gauge tracks the same counter HeapAllocBytes reads.
	if got, direct := snap["go_heap_allocs_bytes_total"], HeapAllocBytes(); got > direct {
		t.Fatalf("sampled allocs %d ahead of direct read %d", got, direct)
	}
}

func TestRuntimeSamplerStartStopNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewRuntimeSampler(NewRegistry(), time.Millisecond)
	s.Start()
	s.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines: %d before, %d after Stop", before, n)
	}
}

func TestHeapAllocBytesMonotonic(t *testing.T) {
	a := HeapAllocBytes()
	if a <= 0 {
		t.Fatalf("HeapAllocBytes = %d, want > 0", a)
	}
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 4096)
	}
	b := HeapAllocBytes()
	if b < a {
		t.Fatalf("HeapAllocBytes went backwards: %d -> %d", a, b)
	}
	_ = sink
}

func TestProcessCPUTime(t *testing.T) {
	// On unix the reading must be positive and nondecreasing; the !unix
	// stub returns 0 and the attribution paths treat that as unknown.
	a := ProcessCPUTime()
	x := 0
	for i := 0; i < 1<<22; i++ {
		x += i
	}
	_ = x
	b := ProcessCPUTime()
	if b < a {
		t.Fatalf("ProcessCPUTime went backwards: %v -> %v", a, b)
	}
}

func TestHistQuantileUS(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 0, 90},
		Buckets: []float64{0, 1e-6, 1e-3, 1},
	}
	if got := histQuantileUS(h, 0.05); got != 1 {
		t.Fatalf("p5 = %d us, want 1", got)
	}
	if got := histQuantileUS(h, 0.99); got != 1e6 {
		t.Fatalf("p99 = %d us, want 1e6", got)
	}
	// Infinite upper edge clamps to the finite lower bound.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{1},
		Buckets: []float64{1e-3, math.Inf(1)},
	}
	if got := histQuantileUS(inf, 0.99); got != 1000 {
		t.Fatalf("inf-edge p99 = %d us, want 1000", got)
	}
	if got := histQuantileUS(&metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
}

func TestSamplerMetricNamesExist(t *testing.T) {
	// Every metric the sampler reads must resolve on this toolchain (the
	// GC-pause name has a documented fallback probed in newRuntimeSamples).
	s := newRuntimeSamples()
	metrics.Read(s)
	for _, sm := range s {
		if sm.Value.Kind() == metrics.KindBad {
			t.Errorf("metric %s unsupported by this runtime", sm.Name)
		}
	}
	if !strings.Contains(s[smGCPauses].Name, "pauses") {
		t.Fatalf("unexpected GC pause metric %s", s[smGCPauses].Name)
	}
}
