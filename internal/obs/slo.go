package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// SLOSchema identifies the JSON shape served at /debug/rpq/slo; bump it when
// the document changes so consumers fail loudly instead of misreading.
const SLOSchema = "rpq-slo/1"

// Metric families the HTTP middleware maintains for SLO accounting; the
// burn-rate tracker reads them back out of the tsdb window.
const (
	SLOTotalFamily = "rpq_http_slo_total"
	SLOGoodFamily  = "rpq_http_slo_good"
)

// SLO is one service-level objective: on Route, a fraction Objective of
// requests must be good, where good means no server error (status < 500)
// and, when LatencyThreshold is non-zero, a latency at or under it.
type SLO struct {
	// Route is the stable route name the middleware records under (e.g.
	// "query", "graph_load").
	Route string
	// Objective is the target good fraction in (0,1), e.g. 0.99. The error
	// budget is 1-Objective.
	Objective float64
	// LatencyThreshold, when non-zero, makes slower-than-threshold responses
	// burn budget even when they succeed.
	LatencyThreshold time.Duration
}

// Good reports whether one response counts toward the objective.
func (s SLO) Good(status int, dur time.Duration) bool {
	if status >= 500 {
		return false
	}
	return s.LatencyThreshold == 0 || dur <= s.LatencyThreshold
}

// SLOWindowStatus is the burn-rate readout of one objective over one
// trailing window.
type SLOWindowStatus struct {
	// Window is the nominal window ("5m", "1h").
	Window string `json:"window"`
	// SpanMS is the span the retained history actually covered — shorter
	// than the nominal window until enough history accumulates.
	SpanMS int64 `json:"span_ms"`
	// Total/Bad are the SLO-eligible and budget-burning request counts over
	// the span.
	Total int64 `json:"total"`
	Bad   int64 `json:"bad"`
	// BadFraction is Bad/Total (0 when Total is 0).
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction divided by the error budget (1-objective): 1.0
	// burns the budget exactly at the sustainable rate, >1 exhausts it
	// early. A 14.4x burn on the 5m window is the classic page threshold.
	BurnRate float64 `json:"burn_rate"`
}

// SLOStatus is one objective's full readout.
type SLOStatus struct {
	Route     string  `json:"route"`
	Objective float64 `json:"objective"`
	// LatencyThresholdMS is the latency component of "good", 0 = none.
	LatencyThresholdMS int64 `json:"latency_threshold_ms,omitempty"`
	// Windows holds one entry per configured window, short to long. A
	// window with no usable history is omitted.
	Windows []SLOWindowStatus `json:"windows"`
	// BudgetRemaining is the unburned error-budget fraction over the
	// longest usable window, clamped to [0,1]: 1 = untouched, 0 = exhausted
	// (or blown).
	BudgetRemaining float64 `json:"error_budget_remaining"`
}

// SLOReport is the /debug/rpq/slo document.
type SLOReport struct {
	Schema string      `json:"schema"`
	SLOs   []SLOStatus `json:"slos"`
}

// SLOTracker computes multi-window burn rates for a set of objectives from
// the counter series the HTTP middleware records into a TimeSeries ring. It
// holds no state of its own — every Report reads the ring fresh.
type SLOTracker struct {
	ts      *TimeSeries
	slos    []SLO
	windows []time.Duration
}

// DefaultSLOWindows are the classic multi-window burn-rate pair: a short
// window that reacts fast and a long window that filters blips.
var DefaultSLOWindows = []time.Duration{5 * time.Minute, time.Hour}

// NewSLOTracker returns a tracker over ts for the given objectives, using
// DefaultSLOWindows when windows is empty.
func NewSLOTracker(ts *TimeSeries, slos []SLO, windows ...time.Duration) *SLOTracker {
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	return &SLOTracker{ts: ts, slos: slos, windows: windows}
}

// SLOs returns the configured objectives.
func (t *SLOTracker) SLOs() []SLO { return t.slos }

// windowName renders a duration compactly ("5m", "1h", "90s").
func windowName(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	}
	return fmt.Sprintf("%ds", d/time.Second)
}

// Report computes the current burn-rate readout for every objective.
func (t *SLOTracker) Report() SLOReport {
	rep := SLOReport{Schema: SLOSchema}
	for _, s := range t.slos {
		st := SLOStatus{
			Route:              s.Route,
			Objective:          s.Objective,
			LatencyThresholdMS: s.LatencyThreshold.Milliseconds(),
			Windows:            []SLOWindowStatus{},
			BudgetRemaining:    1,
		}
		budget := 1 - s.Objective
		totalKey := MetricKey(SLOTotalFamily, "route", s.Route)
		goodKey := MetricKey(SLOGoodFamily, "route", s.Route)
		for _, w := range t.windows {
			totalD, span, ok := t.ts.SeriesDelta(totalKey, w)
			if !ok {
				continue
			}
			goodD, _, okGood := t.ts.SeriesDelta(goodKey, w)
			if !okGood {
				// A route that has served only bad requests never registers
				// the good counter; treat it as zero good.
				goodD = 0
			}
			bad := totalD - goodD
			if bad < 0 {
				bad = 0
			}
			ws := SLOWindowStatus{Window: windowName(w), SpanMS: span.Milliseconds(), Total: totalD, Bad: bad}
			if totalD > 0 {
				ws.BadFraction = float64(bad) / float64(totalD)
			}
			if budget > 0 {
				ws.BurnRate = ws.BadFraction / budget
			} else if ws.BadFraction > 0 {
				// A 100% objective has no budget; any badness burns
				// infinitely fast. Report a sentinel large rate instead of
				// +Inf, which JSON cannot carry.
				ws.BurnRate = 1e9
			}
			st.Windows = append(st.Windows, ws)
			// Budget remaining tracks the longest usable window; windows are
			// configured short to long, so the last one wins.
			rem := 1 - ws.BurnRate
			if rem < 0 {
				rem = 0
			}
			if rem > 1 {
				rem = 1
			}
			st.BudgetRemaining = rem
		}
		rep.SLOs = append(rep.SLOs, st)
	}
	return rep
}

// WriteJSON writes the current report as JSON.
func (t *SLOTracker) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.Report())
}
