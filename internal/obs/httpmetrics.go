package obs

import (
	"strconv"
	"time"
)

// HTTPMetrics records the service plane's RED metrics (rate, errors,
// duration) into a Registry, one observation per finished HTTP request:
//
//   - rpq_http_requests_total{route,status,kind} — request counter per route
//     × status class ("2xx".."5xx") × query kind ("-" for non-query routes);
//   - rpq_http_request_seconds{route} — latency histogram per route;
//   - rpq_http_slo_total{route} / rpq_http_slo_good{route} — per-route SLO
//     event counters for routes with a configured objective, where "good"
//     means no server error and, when the objective carries a latency
//     threshold, a duration at or under it.
//
// All families are labeled registry metrics, so they appear in /metrics, in
// Snapshot, and therefore in every tsdb point — which is what the SLO
// burn-rate tracker consumes.
type HTTPMetrics struct {
	reg  *Registry
	slos map[string]SLO
}

// NewHTTPMetrics returns a recorder writing into reg (the default registry
// when nil). slos configures which routes get SLO event counters and what
// counts as a good request on them.
func NewHTTPMetrics(reg *Registry, slos []SLO) *HTTPMetrics {
	if reg == nil {
		reg = Default()
	}
	m := &HTTPMetrics{reg: reg, slos: map[string]SLO{}}
	for _, s := range slos {
		m.slos[s.Route] = s
	}
	return m
}

// StatusClass buckets an HTTP status code as "2xx".."5xx" ("0xx" for
// anything below 100, e.g. a handler that never wrote).
func StatusClass(status int) string {
	if status < 100 || status > 999 {
		return "0xx"
	}
	return strconv.Itoa(status/100) + "xx"
}

// Observe records one finished request. route is the stable route name (not
// the raw URL), status the response code, kind the query kind for the query
// route ("" for others), dur the handler wall time.
func (m *HTTPMetrics) Observe(route string, status int, kind string, dur time.Duration) {
	m.ObserveTrace(route, status, kind, dur, "")
}

// ObserveTrace is Observe plus the request's trace ID: when non-empty it is
// attached to the latency bucket as an OpenMetrics exemplar, so the slow
// buckets in /metrics carry the most recent trace that landed in them.
func (m *HTTPMetrics) ObserveTrace(route string, status int, kind string, dur time.Duration, traceID string) {
	if m == nil {
		return
	}
	if kind == "" {
		kind = "-"
	}
	m.reg.LabeledGauge("rpq_http_requests_total",
		"HTTP requests served, by route, status class, and query kind",
		"route", route, "status", StatusClass(status), "kind", kind).Add(1)
	m.reg.LabeledHistogram("rpq_http_request_seconds",
		"HTTP request latency by route", "route", route).ObserveTrace(dur, traceID)
	slo, ok := m.slos[route]
	if !ok {
		return
	}
	m.reg.LabeledGauge(SLOTotalFamily,
		"SLO-eligible requests on routes with an objective", "route", route).Add(1)
	if slo.Good(status, dur) {
		m.reg.LabeledGauge(SLOGoodFamily,
			"SLO-good requests (no server error, within the latency threshold)",
			"route", route).Add(1)
	}
}
