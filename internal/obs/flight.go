package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// BundleSchema identifies the diagnostic-bundle layout written by
// Watchdog.Dump; bump it when the file set or meta shape changes.
const BundleSchema = "rpq-bundle/1"

// Watchdog turns anomalies — deadline breaches, cancellations, hung or slow
// queries — into diagnostic bundles: a directory holding the query's
// flight-recorder events, its live progress snapshot, goroutine and heap
// dumps, and (when available) the partial explain profile. The zero value is
// inert; set Dir to enable dumping.
type Watchdog struct {
	// Dir is the directory bundles are written under (created on demand).
	Dir string
	// Slow, when > 0, is the wall-time threshold above which a completed
	// query warrants a bundle (the rpq layer checks it at query end).
	Slow time.Duration
	// Hung, when > 0, is the in-flight duration after which Arm's timer
	// fires a "hung" bundle for a still-running query.
	Hung time.Duration
	// MaxBundles, when > 0, bounds the bundles kept in Dir; the oldest are
	// pruned after each dump.
	MaxBundles int
	// OnBundle, when non-nil, is called with each written bundle's path.
	OnBundle func(path string)
	// Profiler, when non-nil, links the continuous profiler into bundles:
	// each dump pins the profile window covering the anomaly (cutting an
	// in-flight capture short so its samples are flushed) and writes its CPU
	// profile as profile.pb.gz.
	Profiler ProfilePinner

	mu  sync.Mutex
	seq int
}

// ProfilePinner is what a Watchdog needs from the continuous profiler
// (implemented by *prof.Profiler): pin the window covering "now" and return
// its CPU profile bytes and window id. ok is false when nothing has been
// captured yet.
type ProfilePinner interface {
	PinActive(reason string) (cpu []byte, id int64, ok bool)
}

// BundleMeta is the meta.json of a bundle.
type BundleMeta struct {
	Schema     string        `json:"schema"`
	Reason     string        `json:"reason"`
	WrittenAt  string        `json:"written_at"`
	Query      QuerySnapshot `json:"query"`
	RingEvents int           `json:"ring_events"`
	RingTotal  int           `json:"ring_total"`
	// ProfileWindow is the id of the continuous-profiler window pinned for
	// this bundle (written as profile.pb.gz); 0 when no profiler was attached
	// or nothing had been captured yet.
	ProfileWindow int64 `json:"profile_window,omitempty"`
}

// Enabled reports whether the watchdog can write bundles.
func (w *Watchdog) Enabled() bool { return w != nil && w.Dir != "" }

// Dump writes one diagnostic bundle for q and returns its directory:
//
//	meta.json       BundleMeta (schema, reason, progress snapshot)
//	events.ndjson   the flight-recorder ring contents, oldest first
//	goroutines.txt  full goroutine stacks (pprof debug=2)
//	heap.pprof      heap profile in pprof binary format
//	profile.pb.gz   the pinned continuous-profiler CPU window, when a
//	                Profiler is attached (meta.profile_window has its id)
//	explain.json    partial explain profile, when explain is non-nil
//	lint.json       the query's static-analysis findings, when q.Lint is set
//
// reason names the trigger ("deadline", "canceled", "slow", "hung"). explain
// is any JSON-marshalable value (typically *core.Explain); nil skips the
// file. Dump never panics on I/O errors — it returns the first one.
func (w *Watchdog) Dump(q *InflightQuery, reason string, explain any) (string, error) {
	if !w.Enabled() {
		return "", fmt.Errorf("obs: watchdog has no dump directory")
	}
	w.mu.Lock()
	w.seq++
	seq := w.seq
	w.mu.Unlock()

	snap := QuerySnapshot{}
	var events []Event
	ringTotal := 0
	if q != nil {
		snap = q.Snapshot()
		if q.Ring != nil {
			events = q.Ring.Snapshot()
			ringTotal = q.Ring.Total()
		}
	}
	name := fmt.Sprintf("%s-q%d-%s-%d", time.Now().UTC().Format("20060102T150405"), snap.ID, reason, seq)
	dir := filepath.Join(w.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: create bundle dir: %w", err)
	}

	// Pin the profile window before writing meta.json: pinning cuts an
	// in-flight capture short (flushing the samples that cover the anomaly),
	// and meta must carry the pinned window's id.
	var profCPU []byte
	var profWindow int64
	if w.Profiler != nil {
		if cpu, id, ok := w.Profiler.PinActive(reason); ok {
			profCPU, profWindow = cpu, id
		}
	}

	meta := BundleMeta{
		Schema:        BundleSchema,
		Reason:        reason,
		WrittenAt:     time.Now().UTC().Format(time.RFC3339Nano),
		Query:         snap,
		RingEvents:    len(events),
		RingTotal:     ringTotal,
		ProfileWindow: profWindow,
	}
	if err := writeJSONFile(filepath.Join(dir, "meta.json"), meta); err != nil {
		return dir, err
	}

	if len(profCPU) > 0 {
		if err := os.WriteFile(filepath.Join(dir, "profile.pb.gz"), profCPU, 0o644); err != nil {
			return dir, fmt.Errorf("obs: write profile.pb.gz: %w", err)
		}
	}

	ef, err := os.Create(filepath.Join(dir, "events.ndjson"))
	if err != nil {
		return dir, fmt.Errorf("obs: create events.ndjson: %w", err)
	}
	sink := NewNDJSONSink(ef)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := ef.Close(); err != nil {
		return dir, err
	}

	gf, err := os.Create(filepath.Join(dir, "goroutines.txt"))
	if err != nil {
		return dir, fmt.Errorf("obs: create goroutines.txt: %w", err)
	}
	pprof.Lookup("goroutine").WriteTo(gf, 2)
	if err := gf.Close(); err != nil {
		return dir, err
	}

	hf, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return dir, fmt.Errorf("obs: create heap.pprof: %w", err)
	}
	pprof.Lookup("heap").WriteTo(hf, 0)
	if err := hf.Close(); err != nil {
		return dir, err
	}

	if explain != nil {
		if err := writeJSONFile(filepath.Join(dir, "explain.json"), explain); err != nil {
			return dir, err
		}
	}

	if q != nil && q.Lint != nil {
		if err := writeJSONFile(filepath.Join(dir, "lint.json"), q.Lint); err != nil {
			return dir, err
		}
	}

	w.prune()
	if w.OnBundle != nil {
		w.OnBundle(dir)
	}
	return dir, nil
}

// Arm starts the hung-query timer for q: if the returned stop function is
// not called within w.Hung, a "hung" bundle is dumped for the still-running
// query (at most once per Arm). A zero Hung disables the timer; stop is
// always safe to call.
func (w *Watchdog) Arm(q *InflightQuery) (stop func()) {
	if !w.Enabled() || w.Hung <= 0 {
		return func() {}
	}
	t := time.AfterFunc(w.Hung, func() {
		w.Dump(q, "hung", nil)
	})
	return func() { t.Stop() }
}

// prune removes the oldest bundle directories beyond MaxBundles. Directory
// names sort chronologically (UTC timestamp prefix), so lexicographic order
// is age order.
func (w *Watchdog) prune() {
	if w.MaxBundles <= 0 {
		return
	}
	entries, err := os.ReadDir(w.Dir)
	if err != nil {
		return
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) <= w.MaxBundles {
		return
	}
	sort.Strings(dirs)
	for _, d := range dirs[:len(dirs)-w.MaxBundles] {
		os.RemoveAll(filepath.Join(w.Dir, d))
	}
}

// Bundle is a loaded diagnostic bundle.
type Bundle struct {
	// Dir is the bundle directory it was loaded from.
	Dir string
	// Meta is meta.json.
	Meta BundleMeta
	// Events holds events.ndjson decoded line by line.
	Events []map[string]any
	// Goroutines is the full text of goroutines.txt.
	Goroutines string
	// Explain holds explain.json when present, else nil.
	Explain map[string]any
	// Lint holds the raw lint.json when present, else nil; the rpq layer
	// decodes it into []analyze.Diagnostic.
	Lint json.RawMessage
	// Profile holds profile.pb.gz (the pinned continuous-profiler CPU window,
	// gzipped pprof proto) when present, else nil.
	Profile []byte
}

// LoadBundle reads a bundle directory written by Dump. Missing optional
// files (explain.json) are tolerated; a missing or malformed meta.json is an
// error.
func LoadBundle(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	mb, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("obs: read bundle meta: %w", err)
	}
	if err := json.Unmarshal(mb, &b.Meta); err != nil {
		return nil, fmt.Errorf("obs: parse bundle meta: %w", err)
	}
	if b.Meta.Schema != BundleSchema {
		return nil, fmt.Errorf("obs: unknown bundle schema %q", b.Meta.Schema)
	}
	if ef, err := os.Open(filepath.Join(dir, "events.ndjson")); err == nil {
		sc := bufio.NewScanner(ef)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var ev map[string]any
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				b.Events = append(b.Events, ev)
			}
		}
		ef.Close()
	}
	if gb, err := os.ReadFile(filepath.Join(dir, "goroutines.txt")); err == nil {
		b.Goroutines = string(gb)
	}
	if xb, err := os.ReadFile(filepath.Join(dir, "explain.json")); err == nil {
		json.Unmarshal(xb, &b.Explain)
	}
	if lb, err := os.ReadFile(filepath.Join(dir, "lint.json")); err == nil {
		b.Lint = json.RawMessage(lb)
	}
	if pb, err := os.ReadFile(filepath.Join(dir, "profile.pb.gz")); err == nil {
		b.Profile = pb
	}
	return b, nil
}

// writeJSONFile marshals v with indentation and writes it atomically enough
// for diagnostics (single write, then close).
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal %s: %w", filepath.Base(path), err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
