package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingSinkWraparound(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KCounter, Name: "n", Value: int64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	for i, e := range got {
		if e.Value != int64(6+i) {
			t.Errorf("snapshot[%d].Value = %d, want %d", i, e.Value, 6+i)
		}
	}
}

func TestNopTracerDisabled(t *testing.T) {
	if Nop().Enabled() {
		t.Fatal("Nop().Enabled() = true")
	}
	Nop().Emit(Ev(KCounter, "x", 1)) // must not panic
}

func TestMultiTracer(t *testing.T) {
	a, b := NewRingSink(8), NewRingSink(8)
	m := Multi{nil, a, b}
	if !m.Enabled() {
		t.Fatal("Multi not enabled")
	}
	m.Emit(Ev(KHighWater, "worklist", 7))
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fan-out missed a sink: %d %d", a.Total(), b.Total())
	}
	if (Multi{nil}).Enabled() {
		t.Fatal("Multi of nils enabled")
	}
}

func TestNDJSONSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONSink(&buf)
	s.Emit(Event{Time: time.UnixMicro(42), Kind: KPhaseBegin, Name: "solve"})
	s.Emit(Event{Time: time.UnixMicro(99), Kind: KPhaseEnd, Name: "solve", Dur: 57 * time.Microsecond})
	s.Emit(Event{Time: time.UnixMicro(100), Kind: KCounter, Name: "match_calls", Value: 12})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
	}
	var end map[string]any
	json.Unmarshal([]byte(lines[1]), &end)
	if end["kind"] != "phase_end" || end["dur_us"] != float64(57) {
		t.Errorf("phase_end line wrong: %v", end)
	}
	var ctr map[string]any
	json.Unmarshal([]byte(lines[2]), &ctr)
	if ctr["name"] != "match_calls" || ctr["value"] != float64(12) {
		t.Errorf("counter line wrong: %v", ctr)
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	now := time.Now()
	s.Emit(Event{Time: now, Kind: KPhaseBegin, Name: "solve"})
	s.Emit(Event{Time: now.Add(time.Millisecond), Kind: KHighWater, Name: "worklist", Value: 40})
	s.Emit(Event{Time: now.Add(2 * time.Millisecond), Kind: KPhaseEnd, Name: "solve"})
	s.Emit(Event{Time: now.Add(2 * time.Millisecond), Kind: KSpan, Name: "compile", Dur: 300 * time.Microsecond})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	wantPh := []string{"B", "C", "E", "X"}
	for i, e := range evs {
		if e["ph"] != wantPh[i] {
			t.Errorf("event %d ph = %v, want %s", i, e["ph"], wantPh[i])
		}
	}
	if evs[3]["dur"] != float64(300) {
		t.Errorf("span dur = %v, want 300", evs[3]["dur"])
	}
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("rpq_worklist_depth", "current solver worklist depth")
	g.Set(123)
	r.Gauge("rpq_table_bytes", "approximate table bytes").Add(456)
	if r.Gauge("rpq_worklist_depth", "ignored") != g {
		t.Fatal("re-registration returned a new gauge")
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP rpq_worklist_depth current solver worklist depth",
		"# TYPE rpq_worklist_depth gauge",
		"rpq_worklist_depth 123",
		"rpq_table_bytes 456",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeConcurrency(t *testing.T) {
	r := NewRegistry()
	sg := NewSolverGauges(r)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				sg.Sample(int64(j), int64(j), int64(j), int64(j))
				sg.Queries.Add(1)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				var buf bytes.Buffer
				r.WritePrometheus(&buf)
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := sg.Queries.Value(); got != 4000 {
		t.Fatalf("queries = %d, want 4000", got)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("rpq_worklist_depth", "d").Set(7)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "rpq_worklist_depth 7") {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "rpq_metrics") {
		t.Errorf("/debug/vars = %d\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)
	if l.Observe("exist", "fast", 2*time.Millisecond, 1, nil) {
		t.Fatal("fast query recorded")
	}
	if !l.Observe("exist", "(!def(x))* use(x)", 25*time.Millisecond, 3, map[string]int{"worklist": 9}) {
		t.Fatal("slow query not recorded")
	}
	if l.Count() != 1 {
		t.Fatalf("count = %d, want 1", l.Count())
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow record not JSON: %v\n%s", err, buf.String())
	}
	if rec["query"] != "(!def(x))* use(x)" || rec["dur_ms"] != float64(25) || rec["answers"] != float64(3) {
		t.Errorf("record wrong: %v", rec)
	}
	var nilLog *SlowLog
	if nilLog.Observe("exist", "q", time.Hour, 0, nil) || nilLog.Count() != 0 {
		t.Error("nil SlowLog not a no-op")
	}
}

func TestFormatEvents(t *testing.T) {
	t0 := time.Now()
	s := FormatEvents([]Event{
		{Time: t0, Kind: KPhaseBegin, Name: "solve"},
		{Time: t0.Add(time.Millisecond), Kind: KPhaseEnd, Name: "solve", Dur: time.Millisecond},
	})
	if !strings.Contains(s, "phase_begin") || !strings.Contains(s, "solve") {
		t.Errorf("format missing fields:\n%s", s)
	}
	if FormatEvents(nil) != "" {
		t.Error("empty events should format to empty string")
	}
}

func TestWorkerGauges(t *testing.T) {
	r := NewRegistry()
	sg := NewSolverGauges(r)
	// Lazy: no worker gauges before the first Worker call.
	if _, ok := r.Snapshot()["rpq_worker_0_queue_depth"]; ok {
		t.Fatal("worker gauges registered eagerly")
	}
	// Concurrent first use returns one shared set per worker id.
	var wg sync.WaitGroup
	got := make([]*WorkerGauges, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = sg.Worker(i % 2)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i] != sg.Worker(i%2) {
			t.Fatalf("Worker(%d) not stable", i%2)
		}
	}
	sg.Worker(0).QueueDepth.Set(7)
	sg.Worker(1).Steals.Add(3)
	snap := r.Snapshot()
	if snap["rpq_worker_0_queue_depth"] != 7 || snap["rpq_worker_1_steals_total"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "rpq_worker_0_queue_depth 7") {
		t.Fatalf("prometheus output missing worker gauge:\n%s", buf.String())
	}
	// Nil receiver (gauges disabled) must be safe and yield nil.
	var none *SolverGauges
	if none.Worker(3) != nil {
		t.Fatal("nil SolverGauges.Worker != nil")
	}
}

func TestRegistryUnregisterAndReset(t *testing.T) {
	r := NewRegistry()
	r.Gauge("a", "first").Set(1)
	r.Gauge("b", "second").Set(2)
	if !r.Unregister("a") {
		t.Fatal("Unregister(a) = false for a registered gauge")
	}
	if r.Unregister("a") {
		t.Fatal("Unregister(a) = true for an already-removed gauge")
	}
	snap := r.Snapshot()
	if _, ok := snap["a"]; ok {
		t.Fatalf("unregistered gauge still in snapshot: %v", snap)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "a ") {
		t.Fatalf("unregistered gauge still exposed:\n%s", buf.String())
	}
	// A held pointer keeps working; re-registration yields a fresh gauge.
	old := r.Gauge("b", "")
	r.Unregister("b")
	old.Set(9)
	if fresh := r.Gauge("b", "second again"); fresh == old || fresh.Value() != 0 {
		t.Fatal("re-registration did not create a fresh gauge")
	}
	r.Reset()
	if len(r.Snapshot()) != 0 {
		t.Fatalf("Reset left gauges: %v", r.Snapshot())
	}
}

// TestReleaseWorkers is the stale-gauge guard: a run with four workers
// followed by a run with two must not keep exposing rpq_worker_2_* and
// rpq_worker_3_* gauges.
func TestReleaseWorkers(t *testing.T) {
	r := NewRegistry()
	sg := NewSolverGauges(r)
	for i := 0; i < 4; i++ {
		sg.Worker(i).QueueDepth.Set(int64(i))
	}
	// End of the 4-worker run, then a 2-worker run.
	sg.ReleaseWorkers(4)
	if _, ok := r.Snapshot()["rpq_worker_3_queue_depth"]; !ok {
		t.Fatal("ReleaseWorkers(4) removed an active worker's gauges")
	}
	for i := 0; i < 2; i++ {
		sg.Worker(i).QueueDepth.Set(int64(10 + i))
	}
	sg.ReleaseWorkers(2)
	snap := r.Snapshot()
	for _, name := range []string{
		"rpq_worker_2_queue_depth", "rpq_worker_2_steals_total",
		"rpq_worker_2_batches_total", "rpq_worker_2_batched_msgs_total",
		"rpq_worker_3_queue_depth",
	} {
		if _, ok := snap[name]; ok {
			t.Errorf("stale gauge %s survived ReleaseWorkers(2)", name)
		}
	}
	if snap["rpq_worker_0_queue_depth"] != 10 || snap["rpq_worker_1_queue_depth"] != 11 {
		t.Fatalf("active worker gauges damaged: %v", snap)
	}
	// Workers 2/3 re-register cleanly on the next wide run.
	sg.Worker(2).QueueDepth.Set(22)
	if r.Snapshot()["rpq_worker_2_queue_depth"] != 22 {
		t.Fatal("worker 2 did not re-register after release")
	}
	// Nil receiver stays safe.
	var none *SolverGauges
	none.ReleaseWorkers(1)
}

func TestChromeSinkFlushMidStream(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(Event{Time: time.Now(), Kind: KPhaseBegin, Name: "solve"})
	// Buffered: nothing reaches the writer until Flush.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"solve"`) {
		t.Fatalf("Flush did not push buffered events:\n%q", buf.String())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace after flush+close invalid: %v\n%s", err, buf.String())
	}
}

func TestFlushHelperRecursesMulti(t *testing.T) {
	var b1, b2 bytes.Buffer
	c1, c2 := NewChromeSink(&b1), NewChromeSink(&b2)
	m := Multi{NewRingSink(4), Multi{c1}, c2}
	m.Emit(Event{Time: time.Now(), Kind: KPhaseBegin, Name: "solve"})
	Flush(m)
	for i, b := range []*bytes.Buffer{&b1, &b2} {
		if !strings.Contains(b.String(), `"solve"`) {
			t.Errorf("Flush(Multi) missed nested sink %d:\n%q", i, b.String())
		}
	}
	// Non-flusher tracers are a no-op, not a panic.
	Flush(NewRingSink(1))
	Flush(nil)
}
