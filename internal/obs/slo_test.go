package obs

import (
	"math"
	"testing"
	"time"
)

// layWindow records a synthetic tsdb window: 11 points at 60s cadence where
// each step adds 10 requests on route "query", 9 of them good — a steady 10%
// bad fraction.
func layWindow(t *testing.T) *TimeSeries {
	t.Helper()
	reg := NewRegistry()
	ts := NewTimeSeries(reg, TimeSeriesOptions{Interval: time.Second, Retention: time.Hour})
	total := reg.LabeledGauge(SLOTotalFamily, "slo total", "route", "query")
	good := reg.LabeledGauge(SLOGoodFamily, "slo good", "route", "query")
	base := int64(1_700_000_000_000)
	for i := 0; i <= 10; i++ {
		if i > 0 {
			total.Add(10)
			good.Add(9)
		}
		ts.recordAt(base + int64(i)*60_000)
	}
	return ts
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestSLOTrackerBurnRate pins the burn-rate arithmetic over a synthetic
// window: objective 0.99 leaves a 1% budget, a steady 10% bad fraction burns
// it at 10x, and the remaining budget clamps to zero.
func TestSLOTrackerBurnRate(t *testing.T) {
	ts := layWindow(t)
	tr := NewSLOTracker(ts, []SLO{{Route: "query", Objective: 0.99}}, 5*time.Minute, time.Hour)
	rep := tr.Report()
	if rep.Schema != SLOSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.SLOs) != 1 {
		t.Fatalf("slos = %+v", rep.SLOs)
	}
	st := rep.SLOs[0]
	if st.Route != "query" || !approx(st.Objective, 0.99) {
		t.Fatalf("status head: %+v", st)
	}
	if len(st.Windows) != 2 {
		t.Fatalf("windows: %+v", st.Windows)
	}

	// 5m window: endpoints are t=300s (total 50) and t=600s (total 100) —
	// delta 50 total / 5 bad over a 300s span.
	w5 := st.Windows[0]
	if w5.Window != "5m" || w5.SpanMS != 300_000 {
		t.Fatalf("5m window head: %+v", w5)
	}
	if w5.Total != 50 || w5.Bad != 5 {
		t.Fatalf("5m counts: %+v", w5)
	}
	if !approx(w5.BadFraction, 0.1) || !approx(w5.BurnRate, 10) {
		t.Fatalf("5m rates: %+v", w5)
	}

	// 1h window: thin history — the span is the full 600s of retained points,
	// baseline total 0.
	w1h := st.Windows[1]
	if w1h.Window != "1h" || w1h.SpanMS != 600_000 {
		t.Fatalf("1h window head: %+v", w1h)
	}
	if w1h.Total != 100 || w1h.Bad != 10 {
		t.Fatalf("1h counts: %+v", w1h)
	}
	if !approx(w1h.BurnRate, 10) {
		t.Fatalf("1h burn: %+v", w1h)
	}

	// Burning 10x leaves nothing: remaining budget clamps to 0.
	if st.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v", st.BudgetRemaining)
	}
}

// TestSLOTrackerHealthyRoute: a 10% bad fraction against a 0.5 objective
// (budget 0.5) burns at 0.2x and leaves 80% of the budget.
func TestSLOTrackerHealthyRoute(t *testing.T) {
	ts := layWindow(t)
	tr := NewSLOTracker(ts, []SLO{{Route: "query", Objective: 0.5}}, time.Hour)
	st := tr.Report().SLOs[0]
	if len(st.Windows) != 1 {
		t.Fatalf("windows: %+v", st.Windows)
	}
	if !approx(st.Windows[0].BurnRate, 0.2) {
		t.Fatalf("burn = %v", st.Windows[0].BurnRate)
	}
	if !approx(st.BudgetRemaining, 0.8) {
		t.Fatalf("budget remaining = %v", st.BudgetRemaining)
	}
}

// TestSLOTrackerMissingGoodCounter: a route that has served only bad
// requests never registers the good counter; every request burns budget.
func TestSLOTrackerMissingGoodCounter(t *testing.T) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, TimeSeriesOptions{Interval: time.Second, Retention: time.Hour})
	total := reg.LabeledGauge(SLOTotalFamily, "slo total", "route", "broken")
	base := int64(1_700_000_000_000)
	for i := 0; i <= 3; i++ {
		if i > 0 {
			total.Add(5)
		}
		ts.recordAt(base + int64(i)*60_000)
	}
	tr := NewSLOTracker(ts, []SLO{{Route: "broken", Objective: 0.9}}, time.Hour)
	st := tr.Report().SLOs[0]
	if len(st.Windows) != 1 {
		t.Fatalf("windows: %+v", st.Windows)
	}
	w := st.Windows[0]
	if w.Total != 15 || w.Bad != 15 || !approx(w.BadFraction, 1) {
		t.Fatalf("all-bad window: %+v", w)
	}
	if !approx(w.BurnRate, 10) { // 1.0 / 0.1 budget
		t.Fatalf("burn = %v", w.BurnRate)
	}
}

// TestSLOTrackerNoData: with no usable history the report still lists the
// objective, with no windows and a full budget.
func TestSLOTrackerNoData(t *testing.T) {
	ts := NewTimeSeries(NewRegistry(), TimeSeriesOptions{})
	tr := NewSLOTracker(ts, []SLO{{Route: "query", Objective: 0.999}})
	st := tr.Report().SLOs[0]
	if len(st.Windows) != 0 || st.BudgetRemaining != 1 {
		t.Fatalf("empty-history status: %+v", st)
	}
}

// TestSeriesDeltaZeroBaseline: increments that land before the series' first
// retained point still count — a point inside the window from before the
// series appeared is a zero baseline (counters register on first increment).
func TestSeriesDeltaZeroBaseline(t *testing.T) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, TimeSeriesOptions{Interval: time.Second, Retention: time.Hour})
	base := int64(1_700_000_000_000)
	ts.recordAt(base) // counter does not exist yet
	g := reg.LabeledGauge(SLOTotalFamily, "slo total", "route", "query")
	g.Add(7)
	ts.recordAt(base + 1_000)
	name := MetricKey(SLOTotalFamily, "route", "query")
	delta, span, ok := ts.SeriesDelta(name, time.Minute)
	if !ok || delta != 7 || span != time.Second {
		t.Fatalf("SeriesDelta = %d, %v, %v", delta, span, ok)
	}

	// A single point carrying the series and nothing before it is unusable.
	ts2 := NewTimeSeries(reg, TimeSeriesOptions{Interval: time.Second, Retention: time.Hour})
	ts2.recordAt(base)
	if _, _, ok := ts2.SeriesDelta(name, time.Minute); ok {
		t.Fatal("single-point window reported usable")
	}
	if _, _, ok := ts2.SeriesDelta("rpq_absent_series", time.Minute); ok {
		t.Fatal("absent series reported usable")
	}
}

func TestWindowName(t *testing.T) {
	for d, want := range map[time.Duration]string{
		5 * time.Minute:  "5m",
		time.Hour:        "1h",
		90 * time.Second: "90s",
		2 * time.Hour:    "2h",
	} {
		if got := windowName(d); got != want {
			t.Errorf("windowName(%v) = %q, want %q", d, got, want)
		}
	}
}
