package obs

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

func decodeTSDB(t *testing.T, ts *TimeSeries) tsdbDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc tsdbDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return doc
}

func TestTimeSeriesBoundedByRetention(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("x", "")
	ts := NewTimeSeries(r, TimeSeriesOptions{Interval: time.Second, Retention: 5 * time.Second})
	if ts.Cap() != 5 {
		t.Fatalf("Cap = %d, want 5", ts.Cap())
	}
	// Record far more points than the capacity: the ring must stay pinned
	// at Cap and retain the newest window in order.
	for i := 0; i < 37; i++ {
		g.Set(int64(i))
		ts.Record()
	}
	if ts.Len() != 5 {
		t.Fatalf("Len = %d after 37 records, want 5", ts.Len())
	}
	doc := decodeTSDB(t, ts)
	if doc.Schema != TSDBSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, TSDBSchema)
	}
	if doc.Points != 5 || len(doc.TimestampsMS) != 5 {
		t.Fatalf("points = %d, timestamps = %d, want 5", doc.Points, len(doc.TimestampsMS))
	}
	col := doc.Series["x"]
	if len(col) != 5 {
		t.Fatalf("series x has %d entries, want 5", len(col))
	}
	for i, v := range col {
		want := int64(32 + i) // the last five of 0..36
		if v == nil || *v != want {
			t.Fatalf("series x[%d] = %v, want %d", i, v, want)
		}
	}
}

func TestTimeSeriesNullsForMissingSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("a", "")
	ts := NewTimeSeries(r, TimeSeriesOptions{Interval: time.Second, Retention: 10 * time.Second})
	a.Set(1)
	ts.Record()
	// A gauge registered mid-window (e.g. a per-worker gauge) must appear
	// as null at the earlier points, not zero.
	r.Gauge("b", "").Set(7)
	ts.Record()
	doc := decodeTSDB(t, ts)
	b := doc.Series["b"]
	if len(b) != 2 || b[0] != nil || b[1] == nil || *b[1] != 7 {
		t.Fatalf("series b = %v, want [null, 7]", b)
	}
	// And an unregistered gauge disappears from later points.
	r.Unregister("a")
	ts.Record()
	doc = decodeTSDB(t, ts)
	av := doc.Series["a"]
	if len(av) != 3 || av[0] == nil || av[2] != nil {
		t.Fatalf("series a = %v, want [1, 1, null]", av)
	}
}

func TestTimeSeriesSources(t *testing.T) {
	r := NewRegistry()
	ts := NewTimeSeries(r, TimeSeriesOptions{})
	inf := NewInflight()
	ts.WatchInflight(inf)
	q := inf.Begin("exist", "p", "basic")
	ts.Record()
	q.Done()
	ts.Record()
	doc := decodeTSDB(t, ts)
	col := doc.Series["rpq_inflight_queries"]
	if len(col) != 2 || col[0] == nil || *col[0] != 1 || col[1] == nil || *col[1] != 0 {
		t.Fatalf("rpq_inflight_queries = %v, want [1, 0]", col)
	}
}

func TestTimeSeriesStartStopNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ts := NewTimeSeries(NewRegistry(), TimeSeriesOptions{Interval: time.Millisecond, Retention: 50 * time.Millisecond})
	ts.Start()
	ts.Start() // idempotent
	time.Sleep(10 * time.Millisecond)
	if ts.Len() == 0 {
		t.Fatal("no points recorded by running store")
	}
	ts.Stop()
	ts.Stop() // idempotent
	// Stop waits for the goroutine, so the count must settle back.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines: %d before, %d after Stop", before, n)
	}
	if ts.Len() == 0 {
		t.Fatal("retained window lost after Stop")
	}
}

func TestTimeSeriesDefaultCapacity(t *testing.T) {
	ts := NewTimeSeries(NewRegistry(), TimeSeriesOptions{})
	if ts.Interval() != time.Second {
		t.Fatalf("default interval = %v", ts.Interval())
	}
	if ts.Cap() != 600 {
		t.Fatalf("default capacity = %d, want 600 (10m / 1s)", ts.Cap())
	}
	// Degenerate retention still yields a usable ring.
	ts = NewTimeSeries(NewRegistry(), TimeSeriesOptions{Interval: time.Hour, Retention: time.Second})
	if ts.Cap() != 2 {
		t.Fatalf("minimum capacity = %d, want 2", ts.Cap())
	}
}

// TestTimeSeriesMidWindowRegistrationAcrossWrap pins column alignment for a
// gauge first registered mid-retention-window: its column must be
// null-padded at the points before it existed — never shifted — and the
// padding must stay correct as the ring wraps and the pre-registration
// points age out of the window.
func TestTimeSeriesMidWindowRegistrationAcrossWrap(t *testing.T) {
	r := NewRegistry()
	old := r.Gauge("old", "")
	ts := NewTimeSeries(r, TimeSeriesOptions{Interval: time.Second, Retention: 4 * time.Second})

	// Two points before the late gauge exists.
	for i := 0; i < 2; i++ {
		old.Set(int64(i))
		ts.Record()
	}
	late := r.Gauge("late", "")
	late.Set(100)
	old.Set(2)
	ts.Record()

	doc := decodeTSDB(t, ts)
	lateCol := doc.Series["late"]
	if len(lateCol) != 3 || lateCol[0] != nil || lateCol[1] != nil || lateCol[2] == nil || *lateCol[2] != 100 {
		t.Fatalf("late = %v, want [null, null, 100]", lateCol)
	}
	oldCol := doc.Series["old"]
	if len(oldCol) != 3 || oldCol[0] == nil || *oldCol[0] != 0 || oldCol[2] == nil || *oldCol[2] != 2 {
		t.Fatalf("old = %v, want [0, 1, 2] aligned, not shifted by late's padding", oldCol)
	}

	// Wrap the ring: after two more points the capacity-4 window holds one
	// pre-registration point (still null for late) and three live ones.
	for i := 3; i <= 4; i++ {
		old.Set(int64(i))
		late.Set(int64(100 + i))
		ts.Record()
	}
	doc = decodeTSDB(t, ts)
	if doc.Points != 4 {
		t.Fatalf("points = %d after wrap, want 4", doc.Points)
	}
	for name, col := range doc.Series {
		if len(col) != 4 {
			t.Fatalf("series %s has %d entries, want 4 (misaligned columns)", name, len(col))
		}
	}
	lateCol = doc.Series["late"]
	if lateCol[0] != nil {
		t.Fatalf("late[0] = %v, want null (point predates registration)", *lateCol[0])
	}
	if lateCol[1] == nil || *lateCol[1] != 100 || lateCol[3] == nil || *lateCol[3] != 104 {
		t.Fatalf("late = %v, want [null, 100, 103, 104]", lateCol)
	}
	oldCol = doc.Series["old"]
	for i, want := range []int64{1, 2, 3, 4} {
		if oldCol[i] == nil || *oldCol[i] != want {
			t.Fatalf("old = %v, want [1, 2, 3, 4]", oldCol)
		}
	}

	// One more wrap cycle pushes every pre-registration point out: late's
	// column must now be fully populated with no stale nulls.
	for i := 5; i <= 7; i++ {
		old.Set(int64(i))
		late.Set(int64(100 + i))
		ts.Record()
	}
	doc = decodeTSDB(t, ts)
	for i, v := range doc.Series["late"] {
		if v == nil || *v != int64(104+i) {
			t.Fatalf("late after full wrap = %v, want [104..107]", doc.Series["late"])
		}
	}
}
