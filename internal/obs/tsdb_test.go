package obs

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

func decodeTSDB(t *testing.T, ts *TimeSeries) tsdbDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc tsdbDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return doc
}

func TestTimeSeriesBoundedByRetention(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("x", "")
	ts := NewTimeSeries(r, TimeSeriesOptions{Interval: time.Second, Retention: 5 * time.Second})
	if ts.Cap() != 5 {
		t.Fatalf("Cap = %d, want 5", ts.Cap())
	}
	// Record far more points than the capacity: the ring must stay pinned
	// at Cap and retain the newest window in order.
	for i := 0; i < 37; i++ {
		g.Set(int64(i))
		ts.Record()
	}
	if ts.Len() != 5 {
		t.Fatalf("Len = %d after 37 records, want 5", ts.Len())
	}
	doc := decodeTSDB(t, ts)
	if doc.Schema != TSDBSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, TSDBSchema)
	}
	if doc.Points != 5 || len(doc.TimestampsMS) != 5 {
		t.Fatalf("points = %d, timestamps = %d, want 5", doc.Points, len(doc.TimestampsMS))
	}
	col := doc.Series["x"]
	if len(col) != 5 {
		t.Fatalf("series x has %d entries, want 5", len(col))
	}
	for i, v := range col {
		want := int64(32 + i) // the last five of 0..36
		if v == nil || *v != want {
			t.Fatalf("series x[%d] = %v, want %d", i, v, want)
		}
	}
}

func TestTimeSeriesNullsForMissingSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("a", "")
	ts := NewTimeSeries(r, TimeSeriesOptions{Interval: time.Second, Retention: 10 * time.Second})
	a.Set(1)
	ts.Record()
	// A gauge registered mid-window (e.g. a per-worker gauge) must appear
	// as null at the earlier points, not zero.
	r.Gauge("b", "").Set(7)
	ts.Record()
	doc := decodeTSDB(t, ts)
	b := doc.Series["b"]
	if len(b) != 2 || b[0] != nil || b[1] == nil || *b[1] != 7 {
		t.Fatalf("series b = %v, want [null, 7]", b)
	}
	// And an unregistered gauge disappears from later points.
	r.Unregister("a")
	ts.Record()
	doc = decodeTSDB(t, ts)
	av := doc.Series["a"]
	if len(av) != 3 || av[0] == nil || av[2] != nil {
		t.Fatalf("series a = %v, want [1, 1, null]", av)
	}
}

func TestTimeSeriesSources(t *testing.T) {
	r := NewRegistry()
	ts := NewTimeSeries(r, TimeSeriesOptions{})
	inf := NewInflight()
	ts.WatchInflight(inf)
	q := inf.Begin("exist", "p", "basic")
	ts.Record()
	q.Done()
	ts.Record()
	doc := decodeTSDB(t, ts)
	col := doc.Series["rpq_inflight_queries"]
	if len(col) != 2 || col[0] == nil || *col[0] != 1 || col[1] == nil || *col[1] != 0 {
		t.Fatalf("rpq_inflight_queries = %v, want [1, 0]", col)
	}
}

func TestTimeSeriesStartStopNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ts := NewTimeSeries(NewRegistry(), TimeSeriesOptions{Interval: time.Millisecond, Retention: 50 * time.Millisecond})
	ts.Start()
	ts.Start() // idempotent
	time.Sleep(10 * time.Millisecond)
	if ts.Len() == 0 {
		t.Fatal("no points recorded by running store")
	}
	ts.Stop()
	ts.Stop() // idempotent
	// Stop waits for the goroutine, so the count must settle back.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines: %d before, %d after Stop", before, n)
	}
	if ts.Len() == 0 {
		t.Fatal("retained window lost after Stop")
	}
}

func TestTimeSeriesDefaultCapacity(t *testing.T) {
	ts := NewTimeSeries(NewRegistry(), TimeSeriesOptions{})
	if ts.Interval() != time.Second {
		t.Fatalf("default interval = %v", ts.Interval())
	}
	if ts.Cap() != 600 {
		t.Fatalf("default capacity = %d, want 600 (10m / 1s)", ts.Cap())
	}
	// Degenerate retention still yields a usable ring.
	ts = NewTimeSeries(NewRegistry(), TimeSeriesOptions{Interval: time.Hour, Retention: time.Second})
	if ts.Cap() != 2 {
		t.Fatalf("minimum capacity = %d, want 2", ts.Cap())
	}
}
