package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// TSDBSchema identifies the JSON export format of the time-series store;
// bump it when the document shape changes so consumers fail loudly instead
// of misreading.
const TSDBSchema = "rpq-tsdb/1"

// TimeSeriesOptions configures a TimeSeries store.
type TimeSeriesOptions struct {
	// Interval is the snapshot cadence; <= 0 defaults to 1s.
	Interval time.Duration
	// Retention is the window of history to keep; <= 0 defaults to 10
	// minutes. The store's capacity is Retention/Interval points and its
	// memory is bounded by that capacity regardless of how long it runs.
	Retention time.Duration
}

// tsPoint is one retained snapshot: a timestamp plus every metric value
// observed at that instant.
type tsPoint struct {
	unixMS int64
	vals   map[string]int64
}

// TimeSeries is a bounded in-process time-series store: a ring of periodic
// snapshots of every gauge and histogram registered in a Registry (plus any
// extra sources), retaining a configurable window. It backs the
// /debug/rpq/ts endpoint (rpq-tsdb/1 JSON) and the live dashboard.
//
// A store is created stopped; Start launches the snapshot goroutine and
// Stop terminates it and waits for it to exit. Record takes one snapshot
// synchronously (the loop calls it; tests can too).
type TimeSeries struct {
	reg      *Registry
	interval time.Duration
	capacity int

	mu      sync.Mutex
	points  []tsPoint // ring, capacity entries once full
	next    int       // ring write cursor, valid once len(points) == capacity
	sources []func(into map[string]int64)
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewTimeSeries returns a store snapshotting reg (the default registry when
// nil) per o.
func NewTimeSeries(reg *Registry, o TimeSeriesOptions) *TimeSeries {
	if reg == nil {
		reg = Default()
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Retention <= 0 {
		o.Retention = 10 * time.Minute
	}
	capacity := int(o.Retention / o.Interval)
	if capacity < 2 {
		capacity = 2
	}
	return &TimeSeries{reg: reg, interval: o.Interval, capacity: capacity}
}

// AddSource registers an extra metric source merged into every snapshot
// after the registry's values — e.g. the in-flight query count. Call before
// Start; fn must be safe to call from the snapshot goroutine.
func (t *TimeSeries) AddSource(fn func(into map[string]int64)) {
	t.mu.Lock()
	t.sources = append(t.sources, fn)
	t.mu.Unlock()
}

// WatchInflight adds i's live query count to every snapshot as the
// rpq_inflight_queries series.
func (t *TimeSeries) WatchInflight(i *Inflight) {
	t.AddSource(func(into map[string]int64) {
		into["rpq_inflight_queries"] = int64(i.Len())
	})
}

// Interval returns the snapshot cadence.
func (t *TimeSeries) Interval() time.Duration { return t.interval }

// Cap returns the store's point capacity (retention / interval).
func (t *TimeSeries) Cap() int { return t.capacity }

// Len returns the number of retained points.
func (t *TimeSeries) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.points)
}

// Record takes one snapshot now. Memory stays bounded: once the ring is
// full, the oldest point is overwritten.
func (t *TimeSeries) Record() {
	t.recordAt(time.Now().UnixMilli())
}

// recordAt is Record with an explicit timestamp, so tests can lay down a
// synthetic window and pin the arithmetic of window queries.
func (t *TimeSeries) recordAt(unixMS int64) {
	vals := t.reg.Snapshot()
	t.mu.Lock()
	for _, src := range t.sources {
		src(vals)
	}
	p := tsPoint{unixMS: unixMS, vals: vals}
	if len(t.points) < t.capacity {
		t.points = append(t.points, p)
	} else {
		t.points[t.next] = p
		t.next = (t.next + 1) % t.capacity
	}
	t.mu.Unlock()
}

// SeriesDelta reports how much the series named name increased over the
// trailing window: the difference between its newest retained value and its
// value at the oldest retained point no older than the window, along with
// the actual span those endpoints cover (which can be shorter than the
// window when history is thin — burn-rate consumers report the real span so
// a freshly started process does not fake a full window of data). A point
// inside the window from before the series first appeared counts as zero:
// counters register on their first increment, so absence means the count
// was still 0, and without that baseline every increment that lands between
// two snapshots right after startup would be invisible to the delta. ok is
// false when the window holds fewer than two points up to the newest one
// carrying the series.
func (t *TimeSeries) SeriesDelta(name string, window time.Duration) (delta int64, span time.Duration, ok bool) {
	pts := t.ordered()
	// Walk back to the newest point carrying the series.
	hi := len(pts) - 1
	for hi >= 0 {
		if _, present := pts[hi].vals[name]; present {
			break
		}
		hi--
	}
	if hi < 1 {
		return 0, 0, false
	}
	cutoff := pts[hi].unixMS - window.Milliseconds()
	lo := -1
	for i := 0; i < hi; i++ {
		if pts[i].unixMS >= cutoff {
			lo = i
			break
		}
	}
	if lo < 0 {
		return 0, 0, false
	}
	base := pts[lo].vals[name] // zero when the series had not appeared yet
	delta = pts[hi].vals[name] - base
	span = time.Duration(pts[hi].unixMS-pts[lo].unixMS) * time.Millisecond
	if span <= 0 {
		return 0, 0, false
	}
	return delta, span, true
}

// ordered returns the retained points oldest-first.
func (t *TimeSeries) ordered() []tsPoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]tsPoint, 0, len(t.points))
	if len(t.points) < t.capacity {
		return append(out, t.points...)
	}
	out = append(out, t.points[t.next:]...)
	return append(out, t.points[:t.next]...)
}

// tsdbDoc is the rpq-tsdb/1 JSON document: aligned arrays, one entry per
// retained point, with null for a series that did not exist at a point
// (per-worker gauges appear and disappear between runs).
type tsdbDoc struct {
	Schema          string              `json:"schema"`
	IntervalMS      int64               `json:"interval_ms"`
	RetentionPoints int                 `json:"retention_points"`
	Points          int                 `json:"points"`
	TimestampsMS    []int64             `json:"timestamps_ms"`
	Series          map[string][]*int64 `json:"series"`
}

// WriteJSON emits the retained window as an rpq-tsdb/1 document.
func (t *TimeSeries) WriteJSON(w io.Writer) error {
	pts := t.ordered()
	doc := tsdbDoc{
		Schema:          TSDBSchema,
		IntervalMS:      t.interval.Milliseconds(),
		RetentionPoints: t.capacity,
		Points:          len(pts),
		TimestampsMS:    make([]int64, len(pts)),
		Series:          map[string][]*int64{},
	}
	names := map[string]bool{}
	for i, p := range pts {
		doc.TimestampsMS[i] = p.unixMS
		for name := range p.vals {
			names[name] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		col := make([]*int64, len(pts))
		for i, p := range pts {
			if v, ok := p.vals[name]; ok {
				v := v
				col[i] = &v
			}
		}
		doc.Series[name] = col
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Start launches the snapshot goroutine (idempotent): one snapshot
// immediately, then one per interval.
func (t *TimeSeries) Start() {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return
	}
	t.started = true
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	stop, done := t.stop, t.done
	t.mu.Unlock()

	t.Record()
	go func() {
		defer close(done)
		tick := time.NewTicker(t.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Record()
			}
		}
	}()
}

// Stop terminates the snapshot goroutine and waits for it to exit;
// idempotent, no-op when never started. The retained window stays readable.
func (t *TimeSeries) Stop() {
	t.mu.Lock()
	if !t.started {
		t.mu.Unlock()
		return
	}
	t.started = false
	stop, done := t.stop, t.done
	t.mu.Unlock()
	close(stop)
	<-done
}
