package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// NDJSONSink writes one JSON object per event, flushed per line, so a run
// can be watched in flight with tail -f. The schema is documented in
// docs/observability.md.
type NDJSONSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewNDJSONSink returns a sink writing NDJSON events to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return &NDJSONSink{w: w} }

// Enabled implements Tracer.
func (s *NDJSONSink) Enabled() bool { return true }

// Emit implements Tracer.
func (s *NDJSONSink) Emit(e Event) {
	// Hand-rolled marshalling: the schema is flat and fixed, and this
	// avoids reflection in what can be a frequently-hit path.
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"ts_us":`...)
	buf = strconv.AppendInt(buf, e.Time.UnixMicro(), 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, '"')
	if e.Name != "" {
		buf = append(buf, `,"name":`...)
		buf = strconv.AppendQuote(buf, e.Name)
	}
	if e.Value != 0 {
		buf = append(buf, `,"value":`...)
		buf = strconv.AppendInt(buf, e.Value, 10)
	}
	if e.Dur != 0 {
		buf = append(buf, `,"dur_us":`...)
		buf = strconv.AppendInt(buf, e.Dur.Microseconds(), 10)
	}
	if e.Worker != 0 {
		buf = append(buf, `,"worker":`...)
		buf = strconv.AppendInt(buf, int64(e.Worker-1), 10)
	}
	if e.TraceID != "" {
		buf = append(buf, `,"trace_id":"`...)
		buf = append(buf, e.TraceID...)
		buf = append(buf, '"')
	}
	if e.SpanID != "" {
		buf = append(buf, `,"span_id":"`...)
		buf = append(buf, e.SpanID...)
		buf = append(buf, '"')
	}
	buf = append(buf, '}', '\n')
	s.mu.Lock()
	s.w.Write(buf)
	s.mu.Unlock()
}

// ChromeSink writes the Chrome trace_event JSON array format, loadable in
// chrome://tracing or https://ui.perfetto.dev. Phases become duration
// events ("B"/"E"), retrospective spans become complete events ("X"), and
// counters/high-water marks become counter events ("C"). Events carrying a
// Worker id render on their own tid lane (tid 1 = coordinator, tid i+2 =
// worker i), so parallel imbalance and steal storms are visible as gaps and
// bursts per lane.
//
// Writes are buffered; Close writes the closing bracket and flushes. Flush
// pushes buffered events without closing — solvers call it on error paths —
// and the format tolerates a missing closing bracket, so even a crashed
// run's trace still loads.
type ChromeSink struct {
	mu    sync.Mutex
	w     *bufio.Writer
	first bool
	pid   int
}

// NewChromeSink returns a sink writing trace_event JSON to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), first: true, pid: 1}
	io.WriteString(s.w, "[\n")
	return s
}

// Enabled implements Tracer.
func (s *ChromeSink) Enabled() bool { return true }

// Emit implements Tracer.
func (s *ChromeSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := e.Time.UnixMicro()
	tid := e.Worker + 1
	// traceArg carries the request's trace identity into the event's args so
	// a Perfetto query can slice one request out of a multi-request trace.
	traceArg := ""
	if e.TraceID != "" {
		traceArg = fmt.Sprintf(`,"args":{"trace_id":%q}`, e.TraceID)
	}
	var line string
	switch e.Kind {
	case KPhaseBegin:
		line = fmt.Sprintf(`{"name":%q,"ph":"B","ts":%d,"pid":%d,"tid":%d%s}`, e.Name, ts, s.pid, tid, traceArg)
	case KPhaseEnd:
		line = fmt.Sprintf(`{"name":%q,"ph":"E","ts":%d,"pid":%d,"tid":%d%s}`, e.Name, ts, s.pid, tid, traceArg)
	case KSpan:
		// Complete event: ts is the start, dur the length.
		line = fmt.Sprintf(`{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d%s}`,
			e.Name, ts-e.Dur.Microseconds(), e.Dur.Microseconds(), s.pid, tid, traceArg)
	case KCounter, KHighWater, KTableGrowth:
		if e.TraceID != "" {
			line = fmt.Sprintf(`{"name":%q,"ph":"C","ts":%d,"pid":%d,"tid":%d,"args":{"value":%d,"trace_id":%q}}`,
				e.Name, ts, s.pid, tid, e.Value, e.TraceID)
		} else {
			line = fmt.Sprintf(`{"name":%q,"ph":"C","ts":%d,"pid":%d,"tid":%d,"args":{"value":%d}}`,
				e.Name, ts, s.pid, tid, e.Value)
		}
	default:
		return
	}
	if !s.first {
		io.WriteString(s.w, ",\n")
	}
	s.first = false
	io.WriteString(s.w, line)
}

// Flush implements Flusher: buffered events reach the underlying writer
// without terminating the array.
func (s *ChromeSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close terminates the JSON array and flushes.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := io.WriteString(s.w, "\n]\n"); err != nil {
		return err
	}
	return s.w.Flush()
}

// FormatEvents renders events as an aligned human-readable table, relative
// to the first event's timestamp — the text fallback used by examples and
// the CLI when no machine sink is requested.
func FormatEvents(evs []Event) string {
	if len(evs) == 0 {
		return ""
	}
	t0 := evs[0].Time
	out := ""
	for _, e := range evs {
		out += fmt.Sprintf("%10.3fms  %-12s %-24s", float64(e.Time.Sub(t0).Microseconds())/1000, e.Kind, e.Name)
		if e.Dur != 0 {
			out += fmt.Sprintf(" dur=%s", e.Dur.Round(time.Microsecond))
		}
		if e.Value != 0 {
			out += fmt.Sprintf(" value=%d", e.Value)
		}
		if e.Worker != 0 {
			out += fmt.Sprintf(" worker=%d", e.Worker-1)
		}
		out += "\n"
	}
	return out
}
