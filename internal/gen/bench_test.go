package gen

import "testing"

func BenchmarkProgram(b *testing.B) {
	spec := Table1Specs()[4] // cut, 2125 edges
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := Program(spec)
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkRandomLTS(b *testing.B) {
	spec := Table2Specs()[1] // cwi-1-2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := RandomLTS(spec)
		if len(l.Trans) == 0 {
			b.Fatal("empty LTS")
		}
	}
}

func BenchmarkForExistentialTransform(b *testing.B) {
	l := RandomLTS(Table2Specs()[1])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := l.ForExistential()
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}
