package gen

import (
	"testing"

	"rpq/internal/core"
	"rpq/internal/pattern"
)

func TestProgramDeterministic(t *testing.T) {
	spec := ProgSpec{Name: "t", Seed: 7, Edges: 500, Vars: 20, UninitFrac: 0.1, EntryLoop: true}
	a := Program(spec)
	b := Program(spec)
	if a.String() != b.String() {
		t.Fatalf("generation is not deterministic")
	}
	spec.Seed = 8
	c := Program(spec)
	if a.String() == c.String() {
		t.Fatalf("different seeds produced identical graphs")
	}
}

func TestProgramSizeNearTarget(t *testing.T) {
	for _, edges := range []int{200, 1000, 4000} {
		g := Program(ProgSpec{Name: "t", Seed: 3, Edges: edges, Vars: 30, UninitFrac: 0.1})
		got := g.NumEdges()
		if got < edges*85/100 || got > edges*115/100 {
			t.Errorf("target %d edges, generated %d (off by more than 15%%)", edges, got)
		}
	}
}

func TestProgramConnectivity(t *testing.T) {
	g := Program(ProgSpec{Name: "t", Seed: 5, Edges: 800, Vars: 25, UninitFrac: 0.1, EntryLoop: true})
	reach := g.Reachable(g.Start())
	for v := 0; v < g.NumVertices(); v++ {
		if !reach[v] {
			t.Fatalf("vertex %d unreachable", v)
		}
	}
}

func TestProgramUninitAnalysisFindsResults(t *testing.T) {
	spec := Table1Specs()[0] // cksum-shaped
	g := Program(spec)
	// The preset labels uses with site numbers, so the forward query reads
	// use(x,_).
	q := core.MustCompile(pattern.MustParse("(!def(x))* use(x,_)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatalf("no uninitialized uses generated; the Table 1 reproduction needs a nonempty result")
	}
	// The backward query must find the same variables.
	r := g.Reverse()
	var exitV int32 = -1
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			if e.Label.Format(g.U, nil) == "exit()" {
				exitV = e.To
			}
		}
	}
	if exitV < 0 {
		t.Fatal("no exit edge")
	}
	qb := core.MustCompile(pattern.MustParse("_* use(x,l) (!def(x))* entry()"), r.U)
	resB, err := core.Exist(r, exitV, qb, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fwdVars := map[int32]bool{}
	x, _ := q.PS.Lookup("x")
	for _, p := range res.Pairs {
		fwdVars[p.Subst[x]] = true
	}
	xb, _ := qb.PS.Lookup("x")
	bwdVars := map[int32]bool{}
	for _, p := range resB.Pairs {
		bwdVars[p.Subst[xb]] = true
	}
	for v := range bwdVars {
		if !fwdVars[v] {
			t.Errorf("backward query found %s not in forward results", g.U.Syms.Name(v))
		}
	}
	if len(bwdVars) == 0 {
		t.Errorf("backward query found nothing")
	}
}

func TestTable1SpecsMatchPaperSizes(t *testing.T) {
	specs := Table1Specs()
	if len(specs) != 9 {
		t.Fatalf("%d specs, want 9", len(specs))
	}
	if specs[0].Name != "cksum" || specs[0].Edges != 521 {
		t.Errorf("first row %+v", specs[0])
	}
	if specs[8].Name != "ratfor" || specs[8].Edges != 7617 {
		t.Errorf("last row %+v", specs[8])
	}
}

func TestRandomLTSShape(t *testing.T) {
	spec := LTSSpec{Name: "t", Seed: 1, States: 300, Trans: 1200, Actions: 8, Deadlocks: 2, InvisibleFrac: 0.2}
	l := RandomLTS(spec)
	if l.NumStates != 300 || len(l.Trans) != 1200 {
		t.Fatalf("states/trans = %d/%d", l.NumStates, len(l.Trans))
	}
	dead := l.DeadlockStates()
	if len(dead) != 2 {
		t.Fatalf("deadlocks = %d, want 2", len(dead))
	}
	// Deterministic.
	if RandomLTS(spec).String() != l.String() {
		t.Fatalf("LTS generation is not deterministic")
	}
	// All states reachable by construction.
	g := l.ForExistential()
	reach := g.Reachable(g.Start())
	for v := 0; v < g.NumVertices(); v++ {
		if !reach[v] {
			t.Fatalf("state %d unreachable", v)
		}
	}
}

func TestTable2SpecsMatchPaperSizes(t *testing.T) {
	specs := Table2Specs()
	if len(specs) != 8 {
		t.Fatalf("%d specs, want 8", len(specs))
	}
	// Graph edges = transitions + one state self-loop per state must equal
	// the paper's "graph edges" column.
	wantGraphEdges := []int{1513, 4339, 5647, 14878, 18548, 33290, 47345, 67005}
	for i, s := range specs {
		if s.Trans+s.States != wantGraphEdges[i] {
			t.Errorf("%s: transitions %d + states %d != paper graph edges %d",
				s.Name, s.Trans, s.States, wantGraphEdges[i])
		}
	}
}

func TestDeadlockQueryResultSizeMatchesShape(t *testing.T) {
	// The paper's Table 2 result size equals the number of transitions of
	// the LTS (each act edge yields a distinct pair); verify on a small
	// instance.
	spec := LTSSpec{Name: "t", Seed: 9, States: 60, Trans: 240, Actions: 6, InvisibleFrac: 0.2}
	l := RandomLTS(spec)
	g := l.ForExistential()
	q := core.MustCompile(pattern.MustParse("_* state(s) act(_)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Result pairs are (target vertex, {s↦source}) per transition, deduped
	// for parallel edges: at most Trans, and near it for random graphs.
	if len(res.Pairs) > 240 || len(res.Pairs) < 240*70/100 {
		t.Errorf("result size %d far from transition count 240", len(res.Pairs))
	}
}

func TestFindSpec(t *testing.T) {
	if p, _, isProg, err := FindSpec("cksum"); err != nil || !isProg || p.Name != "cksum" {
		t.Errorf("FindSpec(cksum) = %+v, %v, %v", p, isProg, err)
	}
	if _, l, isProg, err := FindSpec("vasy-0-1"); err != nil || isProg || l.Name != "vasy-0-1" {
		t.Errorf("FindSpec(vasy-0-1) = %+v, %v, %v", l, isProg, err)
	}
	if _, _, _, err := FindSpec("nonexistent"); err == nil {
		t.Errorf("FindSpec(nonexistent) succeeded")
	}
}
