// Package gen generates synthetic workloads shaped like the paper's
// evaluation inputs (Liu et al., PLDI 2004, Section 6): structured
// control-flow program graphs with def/use labels standing in for the
// CodeSurfer-derived graphs of Table 1, and random labeled transition
// systems standing in for the VLTS suite of Table 2. Each preset matches
// the corresponding row's graph size; generation is deterministic per seed.
package gen

import (
	"fmt"
	"math/rand"
	"strconv"

	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/lts"
)

// ProgSpec describes a synthetic program graph.
type ProgSpec struct {
	// Name identifies the preset (e.g. "cksum").
	Name string
	// LOC is display metadata mirroring the paper's first column.
	LOC int
	// Seed makes generation deterministic.
	Seed int64
	// Edges is the target number of graph edges.
	Edges int
	// Vars is the variable pool size; the paper's "substs" column for the
	// enumeration algorithm equals the domain of the use parameter, i.e.
	// roughly this number.
	Vars int
	// UninitFrac is the fraction of variables that are never defined, so
	// their uses show up in the uninitialized-use analyses.
	UninitFrac float64
	// UseSites labels uses as use(x, l) with distinct site numbers, as the
	// backward queries of Section 5.1 need.
	UseSites bool
	// EntryLoop adds the entry() self-loop at the start vertex.
	EntryLoop bool
}

// Program generates a structured random control-flow graph: a tree of
// sequences, branches, and loops whose operations are def/use edges over the
// variable pool, mirroring an intraprocedural C control-flow graph.
func Program(spec ProgSpec) *graph.Graph {
	rng := rand.New(rand.NewSource(spec.Seed))
	g := graph.New()
	b := &progBuilder{spec: spec, rng: rng, g: g}

	nUninit := int(float64(spec.Vars) * spec.UninitFrac)
	if nUninit >= spec.Vars {
		nUninit = spec.Vars - 1
	}
	if nUninit < 0 {
		nUninit = 0
	}
	b.firstUninit = spec.Vars - nUninit
	b.defined = make([]bool, spec.Vars)
	b.definedAny = make([]bool, spec.Vars)

	entry := b.fresh()
	g.SetStart(entry)
	if spec.EntryLoop {
		b.edge(entry, label.App("entry"), entry)
	}
	b.budget = spec.Edges
	if spec.EntryLoop {
		b.budget--
	}
	b.total = b.budget
	cur := entry
	// Define a prologue of the initial window, as real programs initialize
	// locals near the top.
	for v := 0; v < 8 && v < b.firstUninit && b.budget > 2; v++ {
		b.defined[v] = true
		b.definedAny[v] = true
		cur = b.op(cur, b.defLabel(int32(v)))
	}
	end := b.seq(cur)
	// Terminate with an exit edge.
	b.edge(end, label.App("exit"), b.fresh())
	return g
}

type progBuilder struct {
	spec        ProgSpec
	rng         *rand.Rand
	g           *graph.Graph
	budget      int
	total       int
	emitted     int
	nextV       int
	nextUse     int
	firstUninit int    // variables >= this index are never defined
	defined     []bool // defined at a dominating (depth-0) position
	definedAny  []bool // defined anywhere, possibly only on some paths
	depth       int    // branch/loop nesting depth
}

// window returns the sliding active-variable window: real programs exhibit
// locality — a variable's uses cluster near its definitions — and without it
// the backward uninit query's propagation distances (and hence worklist
// sizes) blow up quadratically instead of matching the paper's near-linear
// growth.
func (b *progBuilder) window() (base, width int32) {
	w := int32(10)
	if int32(b.firstUninit) < w {
		return 0, int32(b.firstUninit)
	}
	span := int32(b.firstUninit) - w
	pos := int32(0)
	if b.total > 0 {
		pos = int32(int64(b.emitted) * int64(span) / int64(b.total))
	}
	if pos > span {
		pos = span
	}
	return pos, w
}

// pickDef chooses a variable to define, from the active window, preferring
// variables not yet defined (programs initialize a variable before reading
// it).
func (b *progBuilder) pickDef() int32 {
	base, w := b.window()
	for try := 0; try < 3; try++ {
		v := base + int32(b.rng.Intn(int(w)))
		if !b.definedAny[v] {
			b.markDef(v)
			return v
		}
	}
	v := base + int32(b.rng.Intn(int(w)))
	b.markDef(v)
	return v
}

// markDef records a definition; only depth-0 definitions dominate all later
// code and make the variable safe to read unconditionally.
func (b *progBuilder) markDef(v int32) {
	b.definedAny[v] = true
	if b.depth == 0 {
		b.defined[v] = true
	}
}

func (b *progBuilder) fresh() int32 {
	b.nextV++
	return b.g.Vertex("n" + strconv.Itoa(b.nextV))
}

func (b *progBuilder) edge(from int32, t *label.Term, to int32) {
	if err := b.g.AddEdge(from, t, to); err != nil {
		panic(err)
	}
}

func (b *progBuilder) op(cur int32, t *label.Term) int32 {
	nxt := b.fresh()
	b.edge(cur, t, nxt)
	b.budget--
	b.emitted++
	return nxt
}

func (b *progBuilder) varName(i int32) string { return "v" + strconv.Itoa(int(i)) }

func (b *progBuilder) defLabel(v int32) *label.Term {
	return label.App("def", label.Sym(b.varName(v)))
}

func (b *progBuilder) useLabel(v int32) *label.Term {
	if b.spec.UseSites {
		b.nextUse++
		return label.App("use", label.Sym(b.varName(v)), label.Sym(strconv.Itoa(b.nextUse)))
	}
	return label.App("use", label.Sym(b.varName(v)))
}

// pickUse chooses a variable to read: mostly window variables, sometimes
// one of the never-defined tail (whose uses the uninit analyses report).
func (b *progBuilder) pickUse() int32 {
	// Uses of never-defined variables cluster early in the program, as
	// real use-before-def bugs do (the later definition is what makes the
	// variable otherwise live); this also keeps the backward query's
	// propagation to the entry short, as in the paper's measurements.
	if b.firstUninit < b.spec.Vars && b.emitted*4 < b.total && b.rng.Float64() < 0.2 {
		return int32(b.firstUninit + b.rng.Intn(b.spec.Vars-b.firstUninit))
	}
	base, w := b.window()
	// Occasionally read a variable defined only on some paths — the
	// realistic maybe-uninitialized case the analyses exist to find.
	if b.rng.Float64() < 0.025 {
		for try := 0; try < 8; try++ {
			v := base + int32(b.rng.Intn(int(w)))
			if b.definedAny[v] && !b.defined[v] {
				return v
			}
		}
	}
	// Otherwise read only variables whose definition dominates this point.
	for try := 0; try < 16; try++ {
		v := base + int32(b.rng.Intn(int(w)))
		if b.defined[v] {
			return v
		}
	}
	return 0
}

// seq emits a statement sequence from cur until the budget runs low,
// returning the end vertex.
func (b *progBuilder) seq(cur int32) int32 {
	for b.budget > 0 {
		// At nesting depth 0 the position dominates everything after it:
		// define newly windowed variables here, so that (as in real
		// programs) most variables are defined on every path before use,
		// and maybe-uninitialized uses stay the exception.
		if b.depth == 0 {
			if base, w := b.window(); w > 0 {
				v := base + int32(b.rng.Intn(int(w)))
				if !b.defined[v] {
					b.markDef(v)
					cur = b.op(cur, b.defLabel(v))
					continue
				}
			}
		}
		switch r := b.rng.Float64(); {
		case r < 0.55 || b.budget < 8:
			// Plain operation: 60% uses, 40% defs, like typical code.
			if b.rng.Float64() < 0.4 {
				cur = b.op(cur, b.defLabel(b.pickDef()))
			} else {
				cur = b.op(cur, b.useLabel(b.pickUse()))
			}
		case r < 0.85:
			cur = b.branch(cur)
		default:
			cur = b.loop(cur)
		}
	}
	return cur
}

// branch emits an if: condition reads, two arms, a join.
func (b *progBuilder) branch(cur int32) int32 {
	c := b.op(cur, b.useLabel(b.pickUse()))
	// Arms are basic-block sized, as in real control-flow graphs; huge
	// arms would nest the whole program inside one conditional.
	arm := 3 + b.rng.Intn(24)
	if arm > b.budget/3 {
		arm = b.budget / 3
	}
	thenEnd := b.limited(c, arm)
	elseEnd := b.limited(c, arm/2)
	j := b.fresh()
	b.edge(thenEnd, label.App("nop"), j)
	b.edge(elseEnd, label.App("nop"), j)
	b.budget -= 2
	return j
}

// loop emits a while: header join, condition read, body, back edge.
func (b *progBuilder) loop(cur int32) int32 {
	h := b.op(cur, label.App("nop"))
	c := b.op(h, b.useLabel(b.pickUse()))
	size := 4 + b.rng.Intn(30)
	if size > b.budget/3 {
		size = b.budget / 3
	}
	body := b.limited(c, size)
	b.edge(body, label.App("nop"), h)
	b.budget--
	exit := b.fresh()
	b.edge(c, label.App("nop"), exit)
	b.budget--
	return exit
}

// limited runs seq with a temporary smaller budget.
func (b *progBuilder) limited(cur int32, amount int) int32 {
	if amount < 1 {
		amount = 1
	}
	outer := b.budget
	if amount > outer {
		amount = outer
	}
	b.budget = amount
	b.depth++
	end := b.seq(cur)
	b.depth--
	b.budget = outer - (amount - b.budget)
	return end
}

// LTSSpec describes a synthetic labeled transition system.
type LTSSpec struct {
	Name string
	Seed int64
	// States and Trans match the corresponding VLTS rows.
	States, Trans int
	// Actions is the size of the visible action alphabet.
	Actions int
	// Deadlocks is the number of reachable states with no outgoing
	// transitions.
	Deadlocks int
	// InvisibleFrac is the fraction of transitions carrying the invisible
	// action i.
	InvisibleFrac float64
}

// RandomLTS generates a connected random LTS: a random spanning tree from
// the initial state guarantees reachability, then extra transitions are
// sprinkled uniformly; designated deadlock states receive no outgoing
// transitions.
func RandomLTS(spec LTSSpec) *lts.LTS {
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.States
	l := &lts.LTS{Initial: 0, NumStates: n}
	if spec.Actions < 1 {
		spec.Actions = 1
	}
	action := func() string {
		if rng.Float64() < spec.InvisibleFrac {
			return lts.Invisible
		}
		return "a" + strconv.Itoa(rng.Intn(spec.Actions))
	}
	dead := map[int32]bool{}
	for len(dead) < spec.Deadlocks && len(dead) < n-1 {
		dead[int32(1+rng.Intn(n-1))] = true
	}
	outDeg := make([]int, n)
	add := func(from, to int32) {
		l.Trans = append(l.Trans, lts.Transition{From: from, Action: action(), To: to})
		outDeg[from]++
	}
	// Spanning tree: state i (>0) reached from an earlier non-dead state,
	// guaranteeing reachability. The tree is biased toward chains so that
	// few states are left without outgoing transitions, keeping the total
	// transition count at the spec even for sparse systems.
	for i := 1; i < n; i++ {
		from := int32(i - 1)
		if rng.Float64() > 0.75 || dead[from] {
			from = int32(rng.Intn(i))
			for dead[from] {
				from = int32(rng.Intn(i))
			}
		}
		add(from, int32(i))
	}
	// Exactly the designated states deadlock: give every other state at
	// least one outgoing transition.
	for v := 0; v < n; v++ {
		if !dead[int32(v)] && outDeg[v] == 0 {
			add(int32(v), int32(rng.Intn(n)))
		}
	}
	for len(l.Trans) < spec.Trans {
		from := int32(rng.Intn(n))
		if dead[from] {
			continue
		}
		add(from, int32(rng.Intn(n)))
	}
	return l
}

// Table1Specs returns presets matching the nine programs of the paper's
// Table 1 (name, LOC, and graph edge count per row); variable-pool sizes
// follow the row's "substs" column, which for the forward uninitialized-use
// query is the domain of the parameter x.
func Table1Specs() []ProgSpec {
	rows := []struct {
		name  string
		loc   int
		edges int
		vars  int
	}{
		{"cksum", 236, 521, 40},
		{"sum", 198, 714, 57},
		{"expand", 317, 971, 75},
		{"uniq", 406, 1696, 134},
		{"cut", 603, 2124, 146},
		{"C-parser", 1847, 4260, 207},
		{"iburg", 649, 5672, 377},
		{"struct", 1699, 6022, 333},
		{"ratfor", 1261, 7617, 361},
	}
	specs := make([]ProgSpec, len(rows))
	for i, r := range rows {
		specs[i] = ProgSpec{
			Name:       r.name,
			LOC:        r.loc,
			Seed:       int64(1000 + i),
			Edges:      r.edges,
			Vars:       r.vars,
			UninitFrac: 0.12,
			UseSites:   true,
			EntryLoop:  true,
		}
	}
	return specs
}

// Table2Specs returns presets matching the eight transition systems of the
// paper's Table 2 (states and transitions per row).
func Table2Specs() []LTSSpec {
	rows := []struct {
		name   string
		states int
		edges  int
	}{
		{"vasy-0-1", 289, 1224},
		{"cwi-1-2", 1952, 2387},
		{"vasy-1-4", 1183, 4464},
		{"vasy-5-9", 5486, 9392},
		{"cwi-3-14", 3996, 14552},
		{"vasy-8-24", 8879, 24411},
		{"vasy-8-38", 8921, 38424},
		{"vasy-10-56", 10849, 56156},
	}
	specs := make([]LTSSpec, len(rows))
	for i, r := range rows {
		specs[i] = LTSSpec{
			Name:          r.name,
			Seed:          int64(2000 + i),
			States:        r.states,
			Trans:         r.edges,
			Actions:       8,
			Deadlocks:     i % 3, // a few rows have deadlocks
			InvisibleFrac: 0.2,
		}
	}
	return specs
}

// FindSpec returns the preset with the given name from either table.
func FindSpec(name string) (ProgSpec, LTSSpec, bool, error) {
	for _, s := range Table1Specs() {
		if s.Name == name {
			return s, LTSSpec{}, true, nil
		}
	}
	for _, s := range Table2Specs() {
		if s.Name == name {
			return ProgSpec{}, s, false, nil
		}
	}
	return ProgSpec{}, LTSSpec{}, false, fmt.Errorf("gen: unknown preset %q", name)
}
