package minipy

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/minic"
	"rpq/internal/pattern"
)

const sample = `
# uninitialized-use sample
def main():
    a = 5
    b = a + c          # c used uninitialized
    if a < b:
        open(f)
        access(f)
        close(f)
    else:
        a = b
    while a < 10:
        a = a + 1
    return
`

func TestLexIndentation(t *testing.T) {
	toks, err := lex("a = 1\nif a:\n    b = 2\n    c = 3\nd = 4\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		switch tk.kind {
		case tIndent:
			kinds = append(kinds, "IND")
		case tDedent:
			kinds = append(kinds, "DED")
		case tNewline:
			kinds = append(kinds, "NL")
		}
	}
	want := "NL NL IND NL NL DED NL"
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("structure tokens = %q, want %q", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("a = $\n"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lex("a = 'unterminated\n"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("if a:\n    b = 1\n  c = 2\n"); err == nil {
		t.Error("inconsistent dedent accepted")
	}
}

func TestParseBasics(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 1 || prog.Funcs[0].Name != "main" {
		t.Fatalf("funcs = %v", prog.Funcs)
	}
	if len(prog.Funcs[0].Body) != 5 {
		t.Fatalf("main has %d statements, want 5", len(prog.Funcs[0].Body))
	}
}

func TestParseElifChain(t *testing.T) {
	prog, err := Parse("def main():\n    if a:\n        pass\n    elif b:\n        pass\n    else:\n        c = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	ifs, ok := prog.Funcs[0].Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("not an if: %T", prog.Funcs[0].Body[0])
	}
	inner, ok := ifs.Else[0].(*IfStmt)
	if !ok || len(inner.Else) != 1 {
		t.Fatalf("elif not folded into else chain: %#v", ifs.Else)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"def main(:\n    pass\n",
		"if a\n    pass\n",
		"def main():\npass\n", // missing indent
		"a = = 1\n",
		"return 1\nbreak\n", // break outside loop: caught at build
		"def main():\n    def g():\n        pass\n",
	}
	for _, src := range bad {
		_, err := Parse(src)
		if err == nil {
			if !strings.Contains(src, "break") {
				t.Errorf("Parse(%q) succeeded, want error", src)
			} else if _, err := Build(src, Config{}); err == nil {
				t.Errorf("Build(%q) succeeded, want error", src)
			}
		}
	}
}

func TestModuleLevelProgram(t *testing.T) {
	g, err := Build("a = 1\nb = a\n", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if _, err := Build("", Config{}); err == nil {
		t.Fatal("empty module accepted")
	}
}

func TestUninitializedUseAnalysis(t *testing.T) {
	g := MustBuild(sample, Config{})
	q := core.MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vars := map[string]bool{}
	for _, p := range res.Pairs {
		vars[p.Subst.Format(g.U, q.PS)] = true
	}
	if !vars["{x↦c}"] {
		t.Errorf("c should be uninitialized: %v", vars)
	}
	if vars["{x↦a}"] || vars["{x↦b}"] {
		t.Errorf("a/b are defined before use: %v", vars)
	}
}

// TestSameAutomatonForCAndPython reproduces the Section 6 claim: the same
// query automaton performs uninitialized-use analysis for both front ends,
// and on equivalent programs reports the same variables.
func TestSameAutomatonForCAndPython(t *testing.T) {
	cSrc := `
func main() {
	int a, b;
	a = 1;
	b = a + miss1;
	if (a < b) {
		a = miss2;
	}
	while (a < 3) {
		a = a + 1;
	}
}
`
	pySrc := `
def main():
    a = 1
    b = a + miss1
    if a < b:
        a = miss2
    while a < 3:
        a = a + 1
`
	const query = "(!def(x))* use(x)"
	cg := minic.MustBuild(cSrc, minic.Config{})
	pg := MustBuild(pySrc, Config{})

	cq := core.MustCompile(pattern.MustParse(query), cg.U)
	cres, err := core.Exist(cg, cg.Start(), cq, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pq := core.MustCompile(pattern.MustParse(query), pg.U)
	pres, err := core.Exist(pg, pg.Start(), pq, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cVars := map[string]bool{}
	for _, p := range cres.Pairs {
		cVars[p.Subst.Format(cg.U, cq.PS)] = true
	}
	pVars := map[string]bool{}
	for _, p := range pres.Pairs {
		pVars[p.Subst.Format(pg.U, pq.PS)] = true
	}
	if fmt.Sprint(cVars) != fmt.Sprint(pVars) {
		t.Fatalf("C and Python disagree:\n  C:      %v\n  Python: %v", cVars, pVars)
	}
	if !cVars["{x↦miss1}"] || !cVars["{x↦miss2}"] {
		t.Fatalf("expected miss1 and miss2: %v", cVars)
	}
}

func TestForLoopSemantics(t *testing.T) {
	// The loop variable is defined by the for statement; the body may not
	// execute (empty iterable), so uses after the loop are path-sensitive.
	src := `
def main():
    xs = 1
    for i in xs:
        access(i)
    use_it(i)
`
	g := MustBuild(src, Config{})
	q := core.MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundI := false
	for _, p := range res.Pairs {
		if p.Subst.Format(g.U, q.PS) == "{x↦i}" {
			foundI = true
		}
	}
	if !foundI {
		t.Errorf("i is maybe-uninitialized after a zero-iteration loop")
	}
}

func TestEffectCallsAndStrings(t *testing.T) {
	src := `
def main():
    open('log')
    access('log')
    close('log')
`
	g := MustBuild(src, Config{})
	labels := map[string]bool{}
	for _, l := range g.Labels() {
		labels[l.Format(g.U, nil)] = true
	}
	if !labels["open('log')"] || !labels["access('log')"] || !labels["close('log')"] {
		t.Fatalf("effect labels missing: %v", labels)
	}
}

func TestRobustNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	frag := []string{
		"def", "main", "(", ")", ":", "\n", "    ", "if", "else", "elif",
		"while", "for", "in", "a", "=", "1", "+", "pass", "return", "break",
		"'s'", "#c", "\t",
	}
	for i := 0; i < 8000; i++ {
		var sb strings.Builder
		for k := rng.Intn(14); k > 0; k-- {
			sb.WriteString(frag[rng.Intn(len(frag))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse/Build(%q) panicked: %v", src, r)
				}
			}()
			if prog, err := Parse(src); err == nil {
				_, _ = BuildGraph(prog, Config{UseSites: true, EntryLoop: true})
			}
		}()
	}
}
