// Package minipy implements a small Python-like front-end — an
// indentation-aware lexer, parser, and control-flow-graph builder — that
// produces the same style of def/use-labeled program graphs as package
// minic. The paper's tool had exactly this pair of front-ends and ran "the
// same automaton to perform uninitialized use analysis for C and Python"
// (Section 6); the tests reproduce that property.
package minipy

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNewline
	tIndent
	tDedent
	tIdent
	tNumber
	tString
	tPunct
	tKeyword
)

var keywords = map[string]bool{
	"def": true, "if": true, "elif": true, "else": true, "while": true,
	"for": true, "in": true, "return": true, "break": true, "continue": true,
	"pass": true, "and": true, "or": true, "not": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of file"
	case tNewline:
		return "newline"
	case tIndent:
		return "indent"
	case tDedent:
		return "dedent"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes src with Python-style significant indentation: INDENT and
// DEDENT tokens are synthesized from leading whitespace, blank lines and
// comment-only lines are skipped.
func lex(src string) ([]token, error) {
	var toks []token
	indents := []int{0}
	lines := strings.Split(src, "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		// Measure indentation; tabs count as 8 per Python's rule.
		col := 0
		i := 0
		for i < len(line) {
			switch line[i] {
			case ' ':
				col++
			case '\t':
				col += 8 - col%8
			default:
				goto body
			}
			i++
		}
	body:
		rest := line[i:]
		if rest == "" || strings.HasPrefix(rest, "#") {
			continue
		}
		cur := indents[len(indents)-1]
		switch {
		case col > cur:
			indents = append(indents, col)
			toks = append(toks, token{tIndent, "", lineNo})
		case col < cur:
			for len(indents) > 1 && indents[len(indents)-1] > col {
				indents = indents[:len(indents)-1]
				toks = append(toks, token{tDedent, "", lineNo})
			}
			if indents[len(indents)-1] != col {
				return nil, fmt.Errorf("minipy: line %d: inconsistent indentation", lineNo)
			}
		}
		lineToks, err := lexLine(rest, lineNo)
		if err != nil {
			return nil, err
		}
		toks = append(toks, lineToks...)
		toks = append(toks, token{tNewline, "", lineNo})
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, token{tDedent, "", len(lines)})
	}
	toks = append(toks, token{tEOF, "", len(lines)})
	return toks, nil
}

func lexLine(s string, lineNo int) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '#':
			return toks, nil
		case c >= '0' && c <= '9':
			start := i
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			toks = append(toks, token{tNumber, s[start:i], lineNo})
		case c == '\'' || c == '"':
			quote := c
			i++
			start := i
			for i < len(s) && s[i] != quote {
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("minipy: line %d: unterminated string", lineNo)
			}
			toks = append(toks, token{tString, s[start:i], lineNo})
			i++
		case isIdentStart(rune(c)):
			start := i
			for i < len(s) && isIdentPart(rune(s[i])) {
				i++
			}
			text := s[start:i]
			kind := tIdent
			if keywords[text] {
				kind = tKeyword
			}
			toks = append(toks, token{kind, text, lineNo})
		default:
			two := ""
			if i+1 < len(s) {
				two = s[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "//":
				toks = append(toks, token{tPunct, two, lineNo})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', ',', ':':
				toks = append(toks, token{tPunct, string(c), lineNo})
				i++
			default:
				return nil, fmt.Errorf("minipy: line %d: unexpected character %q", lineNo, c)
			}
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
