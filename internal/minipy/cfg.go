package minipy

import (
	"fmt"
	"strconv"

	"rpq/internal/cfgschema"
	"rpq/internal/graph"
	"rpq/internal/label"
)

// Config controls graph labeling, mirroring the MiniC front-end's options so
// the same query automata run on both languages.
type Config struct {
	// UseSites labels uses as use(x, l) with distinct site numbers.
	UseSites bool
	// EntryLoop adds the entry() self-loop at the program entry.
	EntryLoop bool
}

// effectCalls mirrors minic's set: recognized library calls become labels.
// Names lower through cfgschema.Effect, so acq/rel emit the canonical
// lock/unlock constructors.
var effectCalls = map[string]bool{
	"open": true, "close": true, "access": true,
	"malloc": true, "free": true, "deref": true,
	"acq": true, "rel": true, "lock": true, "unlock": true,
	"save": true, "restore": true, "change": true,
	"seteuid": true, "exit": true,
}

// Build parses and lowers MiniPy source to its program graph. If a function
// named main is defined, its body is the program; otherwise the module's
// top-level statements are.
func Build(src string, cfg Config) (*graph.Graph, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return BuildGraph(prog, cfg)
}

// MustBuild is Build that panics on error.
func MustBuild(src string, cfg Config) *graph.Graph {
	g, err := Build(src, cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// BuildGraph lowers a parsed program.
func BuildGraph(prog *Program, cfg Config) (*graph.Graph, error) {
	body := prog.Body
	for _, f := range prog.Funcs {
		if f.Name == "main" {
			body = f.Body
		}
	}
	if body == nil {
		return nil, fmt.Errorf("minipy: empty module and no main function")
	}
	b := &pyBuilder{cfg: cfg, g: graph.New()}
	entry := b.fresh()
	b.g.SetStart(entry)
	if cfg.EntryLoop {
		if err := b.g.AddEdge(entry, label.App("entry"), entry); err != nil {
			return nil, err
		}
	}
	end, err := b.stmts(entry, body, loopCtx{})
	if err != nil {
		return nil, err
	}
	retJoin := b.fresh()
	b.edge(end, label.App("nop"), retJoin)
	for _, v := range b.returns {
		b.edge(v, label.App("nop"), retJoin)
	}
	b.edge(retJoin, label.App("exit"), b.fresh())
	return b.g, nil
}

type loopCtx struct {
	brk, cont int32
	ok        bool
}

type pyBuilder struct {
	cfg     Config
	g       *graph.Graph
	nextV   int
	nextUse int
	returns []int32
}

func (b *pyBuilder) fresh() int32 {
	b.nextV++
	return b.g.Vertex("p" + strconv.Itoa(b.nextV))
}

func (b *pyBuilder) edge(from int32, t *label.Term, to int32) {
	if err := b.g.AddEdge(from, t, to); err != nil {
		panic(err) // labels are constructed ground
	}
}

func (b *pyBuilder) step(cur int32, t *label.Term) int32 {
	nxt := b.fresh()
	b.edge(cur, t, nxt)
	return nxt
}

func (b *pyBuilder) use(cur int32, name string) int32 {
	if b.cfg.UseSites {
		b.nextUse++
		return b.step(cur, label.App("use", label.Sym(name), label.Sym(strconv.Itoa(b.nextUse))))
	}
	return b.step(cur, label.App("use", label.Sym(name)))
}

func (b *pyBuilder) stmts(cur int32, body []Stmt, lc loopCtx) (int32, error) {
	var err error
	for _, s := range body {
		cur, err = b.stmt(cur, s, lc)
		if err != nil {
			return 0, err
		}
	}
	return cur, nil
}

func (b *pyBuilder) stmt(cur int32, s Stmt, lc loopCtx) (int32, error) {
	switch x := s.(type) {
	case *PassStmt:
		return cur, nil
	case *AssignStmt:
		cur, err := b.expr(cur, x.Expr)
		if err != nil {
			return 0, err
		}
		return b.step(cur, label.App("def", label.Sym(x.Name))), nil
	case *ExprStmt:
		return b.expr(cur, x.Expr)
	case *IfStmt:
		c, err := b.expr(cur, x.Cond)
		if err != nil {
			return 0, err
		}
		thenEnd, err := b.stmts(c, x.Then, lc)
		if err != nil {
			return 0, err
		}
		elseEnd, err := b.stmts(c, x.Else, lc)
		if err != nil {
			return 0, err
		}
		j := b.fresh()
		b.edge(thenEnd, label.App("nop"), j)
		b.edge(elseEnd, label.App("nop"), j)
		return j, nil
	case *WhileStmt:
		h := b.step(cur, label.App("nop"))
		c, err := b.expr(h, x.Cond)
		if err != nil {
			return 0, err
		}
		exitV := b.fresh()
		end, err := b.stmts(c, x.Body, loopCtx{brk: exitV, cont: h, ok: true})
		if err != nil {
			return 0, err
		}
		b.edge(end, label.App("nop"), h)
		b.edge(c, label.App("nop"), exitV)
		return exitV, nil
	case *ForStmt:
		// for v in e: body — reads e once, then defines v each iteration.
		cur, err := b.expr(cur, x.Iter)
		if err != nil {
			return 0, err
		}
		h := b.step(cur, label.App("nop"))
		d := b.step(h, label.App("def", label.Sym(x.Var)))
		exitV := b.fresh()
		end, err := b.stmts(d, x.Body, loopCtx{brk: exitV, cont: h, ok: true})
		if err != nil {
			return 0, err
		}
		b.edge(end, label.App("nop"), h)
		b.edge(h, label.App("nop"), exitV)
		return exitV, nil
	case *ReturnStmt:
		if x.Expr != nil {
			var err error
			cur, err = b.expr(cur, x.Expr)
			if err != nil {
				return 0, err
			}
		}
		b.returns = append(b.returns, cur)
		return b.fresh(), nil // dead continuation
	case *BreakStmt:
		if !lc.ok {
			return 0, fmt.Errorf("minipy: line %d: break outside a loop", x.Line)
		}
		b.edge(cur, label.App("nop"), lc.brk)
		return b.fresh(), nil
	case *ContinueStmt:
		if !lc.ok {
			return 0, fmt.Errorf("minipy: line %d: continue outside a loop", x.Line)
		}
		b.edge(cur, label.App("nop"), lc.cont)
		return b.fresh(), nil
	}
	return 0, fmt.Errorf("minipy: unknown statement %T", s)
}

func (b *pyBuilder) expr(cur int32, e Expr) (int32, error) {
	switch x := e.(type) {
	case *NumExpr, *StrExpr:
		return cur, nil
	case *VarExpr:
		return b.use(cur, x.Name), nil
	case *UnExpr:
		return b.expr(cur, x.Operand)
	case *BinExpr:
		cur, err := b.expr(cur, x.Left)
		if err != nil {
			return 0, err
		}
		return b.expr(cur, x.Right)
	case *CallExpr:
		if effectCalls[x.Name] {
			var args []*label.Term
			for _, a := range x.Args {
				switch v := a.(type) {
				case *VarExpr:
					args = append(args, label.Sym(v.Name))
				case *NumExpr:
					args = append(args, label.Sym(v.Value))
				case *StrExpr:
					args = append(args, label.Sym(v.Value))
				default:
					var err error
					cur, err = b.expr(cur, a)
					if err != nil {
						return 0, err
					}
					args = append(args, label.Sym("_complex"))
				}
			}
			return b.step(cur, cfgschema.Effect(x.Name, args...)), nil
		}
		for _, a := range x.Args {
			var err error
			cur, err = b.expr(cur, a)
			if err != nil {
				return 0, err
			}
		}
		return b.step(cur, label.App("call", label.Sym(x.Name))), nil
	}
	return 0, fmt.Errorf("minipy: unknown expression %T", e)
}
