package minipy

import "fmt"

// Program is a parsed MiniPy module: top-level statements plus function
// definitions. Execution starts at the function named "main" if present,
// otherwise at the module's top-level statements.
type Program struct {
	Body  []Stmt
	Funcs []*Func
}

// Func is a def.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// AssignStmt is name = expr.
type AssignStmt struct {
	Name string
	Expr Expr
	Line int
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Expr Expr
	Line int
}

// IfStmt is if/elif/else; Elifs are folded into nested Else chains by the
// parser.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is while cond: body.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is for var in expr: body.
type ForStmt struct {
	Var  string
	Iter Expr
	Body []Stmt
	Line int
}

// ReturnStmt is return [expr].
type ReturnStmt struct {
	Expr Expr
	Line int
}

// BreakStmt, ContinueStmt, PassStmt are the simple statements.
type BreakStmt struct{ Line int }
type ContinueStmt struct{ Line int }
type PassStmt struct{ Line int }

func (*AssignStmt) isStmt()   {}
func (*ExprStmt) isStmt()     {}
func (*IfStmt) isStmt()       {}
func (*WhileStmt) isStmt()    {}
func (*ForStmt) isStmt()      {}
func (*ReturnStmt) isStmt()   {}
func (*BreakStmt) isStmt()    {}
func (*ContinueStmt) isStmt() {}
func (*PassStmt) isStmt()     {}

// Expr is an expression node.
type Expr interface{ isExpr() }

type VarExpr struct{ Name string }
type NumExpr struct{ Value string }
type StrExpr struct{ Value string }
type BinExpr struct {
	Op          string
	Left, Right Expr
}
type UnExpr struct {
	Op      string
	Operand Expr
}
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*VarExpr) isExpr()  {}
func (*NumExpr) isExpr()  {}
func (*StrExpr) isExpr()  {}
func (*BinExpr) isExpr()  {}
func (*UnExpr) isExpr()   {}
func (*CallExpr) isExpr() {}

// Parse parses a MiniPy module.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &pparser{toks: toks}
	prog := &Program{}
	for !p.at(tEOF, "") {
		if p.at(tKeyword, "def") {
			fn, err := p.parseDef()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type pparser struct {
	toks []token
	pos  int
}

func (p *pparser) cur() token  { return p.toks[p.pos] }
func (p *pparser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *pparser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *pparser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *pparser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = token{kind: kind}.String()
	}
	return token{}, p.errf("expected %s, got %s", want, p.cur())
}

func (p *pparser) errf(format string, args ...any) error {
	return fmt.Errorf("minipy: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *pparser) parseDef() (*Func, error) {
	kw, _ := p.expect(tKeyword, "def")
	name, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	if !p.at(tPunct, ")") {
		for {
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, id.text)
			if !p.accept(tPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	return &Func{Name: name.text, Params: params, Body: body, Line: kw.line}, nil
}

// parseSuite parses ": NEWLINE INDENT stmt+ DEDENT".
func (p *pparser) parseSuite() ([]Stmt, error) {
	if _, err := p.expect(tPunct, ":"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tNewline, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(tIndent, ""); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.at(tDedent, "") && !p.at(tEOF, "") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	if _, err := p.expect(tDedent, ""); err != nil {
		return nil, err
	}
	return body, nil
}

func (p *pparser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tKeyword, "if"):
		return p.parseIf()
	case p.at(tKeyword, "while"):
		p.pos++
		cond, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		body, err := p.parseSuite()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil
	case p.at(tKeyword, "for"):
		p.pos++
		v, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tKeyword, "in"); err != nil {
			return nil, err
		}
		iter, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		body, err := p.parseSuite()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: v.text, Iter: iter, Body: body, Line: t.line}, nil
	case p.at(tKeyword, "return"):
		p.pos++
		var e Expr
		if !p.at(tNewline, "") {
			var err error
			e, err = p.parseExpr(0)
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tNewline, ""); err != nil {
			return nil, err
		}
		return &ReturnStmt{Expr: e, Line: t.line}, nil
	case p.at(tKeyword, "break"):
		p.pos++
		if _, err := p.expect(tNewline, ""); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case p.at(tKeyword, "continue"):
		p.pos++
		if _, err := p.expect(tNewline, ""); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	case p.at(tKeyword, "pass"):
		p.pos++
		if _, err := p.expect(tNewline, ""); err != nil {
			return nil, err
		}
		return &PassStmt{Line: t.line}, nil
	case p.at(tKeyword, "def"):
		return nil, p.errf("nested function definitions are not supported")
	default:
		// Assignment or expression statement.
		if p.at(tIdent, "") && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "=" {
			id := p.next()
			p.pos++ // '='
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tNewline, ""); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: id.text, Expr: e, Line: t.line}, nil
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tNewline, ""); err != nil {
			return nil, err
		}
		return &ExprStmt{Expr: e, Line: t.line}, nil
	}
}

func (p *pparser) parseIf() (Stmt, error) {
	t := p.next() // if or elif
	cond, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	then, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	switch {
	case p.at(tKeyword, "elif"):
		s, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		els = []Stmt{s}
	case p.accept(tKeyword, "else"):
		els, err = p.parseSuite()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.line}, nil
}

var binPrec = map[string]int{
	"or": 1, "and": 2,
	"==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "//": 6, "%": 6,
}

func (p *pparser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		op := t.text
		if t.kind != tPunct && !(t.kind == tKeyword && (op == "and" || op == "or")) {
			return left, nil
		}
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, Left: left, Right: right}
	}
}

func (p *pparser) parseUnary() (Expr, error) {
	t := p.cur()
	if (t.kind == tPunct && t.text == "-") || (t.kind == tKeyword && t.text == "not") {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.text, Operand: e}, nil
	}
	return p.parsePrimary()
}

func (p *pparser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.pos++
		return &NumExpr{Value: t.text}, nil
	case t.kind == tString:
		p.pos++
		return &StrExpr{Value: t.text}, nil
	case t.kind == tIdent:
		p.pos++
		if p.at(tPunct, "(") {
			p.pos++
			var args []Expr
			if !p.at(tPunct, ")") {
				for {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.text, Args: args, Line: t.line}, nil
		}
		return &VarExpr{Name: t.text}, nil
	case t.kind == tPunct && t.text == "(":
		p.pos++
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected an expression, got %s", t)
	}
}
