package rpq

import (
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"rpq/internal/obs"
)

// panicTracer panics on the first event it receives — standing in for a bug
// inside a solver variant. The rpq layer must still drain the in-flight
// registry on that exit path.
type panicTracer struct{}

func (panicTracer) Enabled() bool  { return true }
func (panicTracer) Emit(obs.Event) { panic("tracer boom") }

// TestInflightDrainsOnSolverPanic pins the deferred-Done lifecycle fix: a
// panic escaping any solver variant must not leave a ghost entry in
// /debug/rpq/queries.
func TestInflightDrainsOnSolverPanic(t *testing.T) {
	g := figure1Graph(t)
	if n := len(InflightQueries()); n != 0 {
		t.Fatalf("in-flight registry not empty before test: %d entries", n)
	}
	run := func(name string, f func()) {
		t.Helper()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: solver did not panic", name)
				}
			}()
			f()
		}()
		if n := len(InflightQueries()); n != 0 {
			t.Fatalf("%s: %d ghost in-flight entries after solver panic", name, n)
		}
	}
	opts := func() *Options { return &Options{Tracer: panicTracer{}} }
	p := MustParsePattern("(!def(x))* use(x)")
	run("exist", func() { g.Exist(p, opts()) })
	run("universal", func() { g.Universal(p, opts()) })
	run("violations", func() { g.Violations("(def(x) (use(x))*)*", false, opts()) })
	// Repeat the existential case a few times: Done must also be safe when
	// the same options value is reused across runs.
	o := opts()
	for i := 0; i < 3; i++ {
		run("exist-repeat", func() { g.Exist(p, o) })
	}
}

// TestInflightDrainsOnProgressPanic panics from the progress callback — the
// other user-supplied hook that runs on a solver goroutine.
func TestInflightDrainsOnProgressPanic(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	// A tracer that does nothing keeps the traced (instrumented) path live
	// while Progress fires per enumerated substitution.
	opts := &Options{
		Algorithm: Enumerate,
		Progress:  func(Progress) { panic("progress boom") },
	}
	func() {
		defer func() { recover() }()
		g.Exist(p, opts)
	}()
	if n := len(InflightQueries()); n != 0 {
		t.Fatalf("%d ghost in-flight entries after progress panic", n)
	}
}

// TestServeObservabilityWithStartupFailure pins the startup-failure path: a
// bind error must return without leaving the runtime sampler or time-series
// goroutines running.
func TestServeObservabilityWithStartupFailure(t *testing.T) {
	// Occupy a port so the observability bind fails deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		srv, err := ServeObservabilityWith(ln.Addr().String(), ObservabilityConfig{
			SampleInterval: time.Millisecond,
			TSInterval:     time.Millisecond,
			Retention:      time.Second,
		})
		if err == nil {
			srv.Close()
			t.Fatalf("ServeObservabilityWith on a bound port succeeded")
		}
		if !strings.Contains(err.Error(), "listen") {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// Any leaked sampler or time-series goroutine would persist; give the
	// scheduler a moment to settle, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines grew across failed startups: %d before, %d after", before, n)
	}
}
