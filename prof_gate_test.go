package rpq

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"rpq/internal/obs"
	"rpq/internal/prof"
)

// chainGraph builds a start→v1→…→vn chain of distinct use edges; the
// uninitialized-use pattern visits every prefix, so query time grows with n.
func chainGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.MustAddEdge(fmt.Sprintf("v%d", i), fmt.Sprintf("use(a%d)", i%512), fmt.Sprintf("v%d", i+1))
	}
	g.SetStart("v0")
	return g
}

// newestBundle loads the most recently written bundle under dir.
func newestBundle(t *testing.T, dir string) *Bundle {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no bundles in %s: %v", dir, err)
	}
	newest, mod := "", time.Time{}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		if newest == "" || info.ModTime().After(mod) {
			newest, mod = e.Name(), info.ModTime()
		}
	}
	b, err := LoadBundle(dir + "/" + newest)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWatchdogBundleLinksProfileWindow is the gate-tracer test for the
// watchdog↔profiler link: a slow query run under a continuous profiler must
// produce a flight-recorder bundle whose profile.pb.gz carries CPU samples
// labeled with that query's trace ID — even though the watchdog fires while
// the profile window is still being captured (the pin cuts it short).
func TestWatchdogBundleLinksProfileWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-tracer test burns CPU for profile samples")
	}

	// window == interval keeps a capture in flight continuously, so the
	// watchdog always pins mid-capture.
	p := prof.New(prof.Options{
		Window:   30 * time.Second,
		Interval: 30 * time.Second,
		Registry: obs.NewRegistry(),
	})
	p.Start()
	defer p.Stop()

	dir := t.TempDir()
	pat := MustParsePattern("(!def(x))* use(x)")
	opts := &Options{Watchdog: &Watchdog{Dir: dir, Slow: time.Nanosecond, Profiler: p}}

	n := 1 << 16 // ~150ms per run; doubled when the sampler comes up empty
	g := chainGraph(t, n)
	sawSamples := false
	for attempt := 0; attempt < 6; attempt++ {
		tc := obs.NewTraceContext()
		ctx := obs.WithTrace(context.Background(), tc)
		if _, err := g.ExistContext(ctx, pat, opts); err != nil {
			t.Fatal(err)
		}

		b := newestBundle(t, dir)
		if len(b.Profile) == 0 {
			// The pinned window had no CPU bytes: a competing CPU profile
			// (e.g. go test -cpuprofile) owns the runtime's only slot.
			if w, ok := p.Store().Latest(); ok && w.Err != "" {
				t.Skipf("cpu capture unavailable: %s", w.Err)
			}
			continue
		}
		if b.Meta.ProfileWindow == 0 {
			t.Fatal("bundle has profile.pb.gz but meta.profile_window is unset")
		}
		pr, err := prof.ParseProfile(b.Profile)
		if err != nil {
			t.Fatalf("bundle profile does not decode: %v", err)
		}
		if len(pr.Samples) > 0 {
			sawSamples = true
		}
		for _, s := range pr.Samples {
			if s.Labels["rpq_trace_id"] == tc.TraceIDString() {
				// The full label set from the query's pprof.Do must ride along.
				if s.Labels["rpq_kind"] != "exist" {
					t.Fatalf("traced sample lacks rpq_kind: %v", s.Labels)
				}
				if !strings.HasPrefix(b.Meta.Reason, "slow") {
					t.Fatalf("bundle reason = %q", b.Meta.Reason)
				}
				return
			}
		}
		// Sampled, but our query was too quick for the 100Hz profiler to
		// catch. Double the workload and try again.
		n *= 2
		g = chainGraph(t, n)
	}
	if !sawSamples {
		t.Skip("profiler produced no CPU samples at all; machine too starved to gate on")
	}
	t.Fatal("no bundle profile carried the query's rpq_trace_id label")
}
